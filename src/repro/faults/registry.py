"""Named fault points with deterministic, seeded injection schedules.

The robustness claims of an integrated active OODBMS — rule failures
abort their own subtransaction, recovery tolerates torn log tails, the
scheduler survives worker death — can only be trusted if faults can be
*provoked on demand* at the exact boundary where they would occur in
production.  This module provides that mechanism, mirroring the
``repro.obs`` null-object pattern so the production cost is nil:

* **near-zero cost when disabled**: a registry constructed with
  ``enabled=False`` (the default for every engine unless
  ``ExecutionConfig(fault_injection=True)``) hands out the shared
  :data:`NULL_POINT`, whose :meth:`~FaultPoint.hit` is a no-op method
  call — no dictionary lookup, no branching, no allocation;
* **one attribute check when enabled but disarmed**: a real
  :class:`FaultPoint` with nothing armed returns after ``if not
  self._specs``;
* **deterministic when armed**: trigger decisions (``fail the Nth
  call``, ``probability p``, ``one-shot``) draw from a
  ``random.Random(seed)`` owned by the registry, so a fault schedule
  replays identically for the same seed.

Injection points are threaded through the storage manager and WAL
(append, fsync, torn-tail truncation, page flush, checkpoint, crash),
the buffer pool (evict), the lock manager (acquire), the rule scheduler
(worker death) and the composer dispatch path (queue stall); the
constants below name them.  Application code may define its own points
with :meth:`FaultRegistry.hit`.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, Optional

from repro.errors import InjectedFault
from repro.obs.flight import NULL_FLIGHT, FlightRecorder
from repro.obs.metrics import NULL_METRICS, MetricsRegistry

# -- well-known fault point names -------------------------------------------

WAL_APPEND = "wal.append"
WAL_FSYNC = "wal.fsync"
WAL_TORN_TAIL = "wal.torn_tail"
STORAGE_COMMIT = "storage.commit"
STORAGE_CHECKPOINT = "storage.checkpoint"
STORAGE_PAGE_FLUSH = "storage.page_flush"
STORAGE_CRASH = "storage.crash"
BUFFER_EVICT = "buffer.evict"
LOCK_ACQUIRE = "locks.acquire"
SCHEDULER_WORKER = "scheduler.worker"
COMPOSER_DISPATCH = "composer.dispatch"
SERVER_ACCEPT = "server.accept"
SERVER_READ = "server.read"
SERVER_WRITE = "server.write"
SERVER_AUTH = "server.auth"

#: Every built-in injection point and where it fires.
KNOWN_POINTS = {
    WAL_APPEND: "before a log record is buffered (storage/wal.py)",
    WAL_FSYNC: "before the log fsync (storage/wal.py)",
    WAL_TORN_TAIL: "during flush: writes a torn tail then raises",
    STORAGE_COMMIT: "at the start of a storage-level commit",
    STORAGE_CHECKPOINT: "at the start of a checkpoint",
    STORAGE_PAGE_FLUSH: "before dirty pages are forced to disk",
    STORAGE_CRASH: "when a crash is simulated (observer hook)",
    BUFFER_EVICT: "before a victim page is evicted",
    LOCK_ACQUIRE: "at the top of every lock acquisition",
    SCHEDULER_WORKER: "at the start of a detached worker's run",
    COMPOSER_DISPATCH: "before composition listeners are invoked",
    SERVER_ACCEPT: "after a client connection is accepted (server/server.py)",
    SERVER_READ: "before a request frame is read off a connection",
    SERVER_WRITE: "before a response frame is written to a connection",
    SERVER_AUTH: "during the hello handshake's token check",
}

_UNSET = object()


class FaultSpec:
    """One armed schedule on a fault point.

    Exactly one trigger rule applies, checked in this order:

    * ``nth`` — trigger on the Nth call to the point (1-based), once;
    * ``probability`` — trigger each call with probability p, drawn from
      the registry's seeded RNG;
    * neither — trigger on every call.

    ``times`` bounds the total number of injections (default 1: a
    one-shot fault); ``None`` means unlimited.  When triggered, the spec
    sleeps ``delay`` seconds if set, invokes ``callback(ctx)`` if set,
    then raises ``exc`` if set.  A spec armed with only a ``payload``
    is a *marker*: :meth:`FaultPoint.hit` returns it and the
    instrumented code decides what to corrupt (the WAL's torn-tail
    point works this way).
    """

    __slots__ = ("point_name", "nth", "probability", "times", "delay",
                 "exc", "callback", "payload", "injections")

    def __init__(self, point_name: str,
                 nth: Optional[int] = None,
                 probability: Optional[float] = None,
                 times: Optional[int] = 1,
                 delay: Optional[float] = None,
                 exc: Any = _UNSET,
                 callback: Optional[Callable[[dict], None]] = None,
                 payload: Optional[dict[str, Any]] = None):
        if nth is not None and nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if times is not None and times < 1:
            raise ValueError("times must be >= 1 or None (unlimited)")
        self.point_name = point_name
        self.nth = nth
        self.probability = probability
        self.times = times
        self.delay = delay
        if exc is _UNSET:
            # Default effect: raise InjectedFault — unless the spec is a
            # pure delay/callback/marker arrangement.
            exc = (None if (delay is not None or callback is not None
                            or payload is not None)
                   else InjectedFault)
        self.exc = exc
        self.callback = callback
        self.payload = payload or {}
        self.injections = 0

    def exhausted(self) -> bool:
        return self.times is not None and self.injections >= self.times

    def __repr__(self) -> str:
        trigger = (f"nth={self.nth}" if self.nth is not None
                   else f"p={self.probability}" if self.probability is not None
                   else "always")
        return (f"<FaultSpec {self.point_name} {trigger} "
                f"times={self.times} injected={self.injections}>")


class FaultPoint:
    """A named injection point held by the instrumented code.

    The owner obtains it once at construction (``faults.point(name)``)
    and calls :meth:`hit` on the hot path; armed specs may raise, sleep,
    call back, or return a marker spec for the caller to act on.
    """

    __slots__ = ("name", "calls", "injected", "_registry", "_specs")

    def __init__(self, name: str, registry: "FaultRegistry"):
        self.name = name
        self.calls = 0
        self.injected = 0
        self._registry = registry
        self._specs: list[FaultSpec] = []

    def hit(self, **ctx: Any) -> Optional[FaultSpec]:
        """Consult the point; the disarmed fast path is one list check."""
        if not self._specs:
            return None
        return self._registry._fire(self, ctx)

    def armed(self) -> bool:
        return bool(self._specs)

    def __repr__(self) -> str:
        return (f"<FaultPoint {self.name} calls={self.calls} "
                f"armed={len(self._specs)}>")


class _NullFaultPoint(FaultPoint):
    """Shared no-op point handed out by a disabled registry."""

    __slots__ = ()

    def __init__(self):  # no registry back-reference
        self.name = "null"
        self.calls = 0
        self.injected = 0
        self._specs = ()

    def hit(self, **ctx: Any) -> None:
        return None


NULL_POINT = _NullFaultPoint()


class FaultRegistry:
    """Names and owns every fault point of one engine instance.

    A registry constructed with ``enabled=False`` returns the shared
    :data:`NULL_POINT` from :meth:`point` and refuses to arm anything —
    the production configuration.  Enabled registries are what tests and
    torture harnesses drive::

        faults = db.faults                      # fault_injection=True
        faults.arm("wal.append", nth=3)         # 3rd append raises
        faults.arm("locks.acquire", delay=0.05, times=None)
        faults.arm("app.flaky", times=2)        # user-defined point

    Injection totals are wired into ``repro.obs`` (``faults.injected``
    plus one counter per point) and surfaced in ``db.statistics()``.
    """

    def __init__(self, enabled: bool = True, seed: Optional[int] = None,
                 metrics: MetricsRegistry = NULL_METRICS,
                 flight: FlightRecorder = NULL_FLIGHT):
        self.enabled = enabled
        self.seed = seed
        self.rng = random.Random(seed)
        self.injections = 0
        self._points: dict[str, FaultPoint] = {}
        self._lock = threading.RLock()
        self._metrics = metrics
        self._m_injected = metrics.counter("faults.injected")
        self._flight = flight

    # -- point handles -------------------------------------------------------

    def point(self, name: str) -> FaultPoint:
        """The (created-on-demand) point for ``name``; instrumented code
        keeps the returned reference and calls ``hit()`` on it."""
        if not self.enabled:
            return NULL_POINT
        with self._lock:
            point = self._points.get(name)
            if point is None:
                point = self._points[name] = FaultPoint(name, self)
            return point

    def hit(self, name: str, **ctx: Any) -> Optional[FaultSpec]:
        """One-off consultation by name (application-defined points)."""
        if not self.enabled:
            return None
        return self.point(name).hit(**ctx)

    # -- arming --------------------------------------------------------------

    def arm(self, name: str, *, nth: Optional[int] = None,
            probability: Optional[float] = None,
            times: Optional[int] = 1,
            delay: Optional[float] = None,
            exc: Any = _UNSET,
            callback: Optional[Callable[[dict], None]] = None,
            payload: Optional[dict[str, Any]] = None) -> FaultSpec:
        """Arm a schedule on point ``name`` and return it.

        See :class:`FaultSpec` for the trigger and effect semantics.
        Raises :class:`RuntimeError` on a disabled registry so a test
        that forgot ``ExecutionConfig(fault_injection=True)`` fails
        loudly instead of silently injecting nothing.
        """
        if not self.enabled:
            raise RuntimeError(
                "fault injection is disabled; construct the engine with "
                "ExecutionConfig(fault_injection=True)")
        spec = FaultSpec(name, nth=nth, probability=probability,
                         times=times, delay=delay, exc=exc,
                         callback=callback, payload=payload)
        with self._lock:
            point = self._points.get(name)
            if point is None:
                point = self._points[name] = FaultPoint(name, self)
            point._specs.append(spec)
        return spec

    def disarm(self, name: Optional[str] = None) -> None:
        """Remove armed specs from ``name`` (or from every point)."""
        with self._lock:
            if name is None:
                for point in self._points.values():
                    point._specs.clear()
            else:
                point = self._points.get(name)
                if point is not None:
                    point._specs.clear()

    def armed_points(self) -> list[str]:
        with self._lock:
            return sorted(name for name, point in self._points.items()
                          if point._specs)

    # -- firing --------------------------------------------------------------

    def _fire(self, point: FaultPoint, ctx: dict) -> Optional[FaultSpec]:
        with self._lock:
            point.calls += 1
            triggered = None
            for spec in point._specs:
                if self._should_trigger(spec, point.calls):
                    spec.injections += 1
                    point.injected += 1
                    self.injections += 1
                    triggered = spec
                    break
            point._specs = [s for s in point._specs if not s.exhausted()]
            if triggered is None:
                return None
            self._m_injected.inc()
            self._metrics.counter(f"faults.injected.{point.name}").inc()
        if self._flight.enabled:
            self._flight.record("fault", point=point.name,
                                call=point.calls, spec=repr(triggered))
        # Effects run outside the registry lock: a delay must not stall
        # unrelated points, and callbacks may re-enter the registry.
        if triggered.delay:
            time.sleep(triggered.delay)
        if triggered.callback is not None:
            triggered.callback(dict(ctx, point=point.name))
        if triggered.exc is not None:
            exc = triggered.exc
            if isinstance(exc, type) and issubclass(exc, BaseException):
                exc = exc(f"injected fault at {point.name!r} "
                          f"(call #{point.calls})")
            raise exc
        return triggered

    def _should_trigger(self, spec: FaultSpec, call_index: int) -> bool:
        if spec.exhausted():
            return False
        if spec.nth is not None:
            return call_index == spec.nth
        if spec.probability is not None:
            return self.rng.random() < spec.probability
        return True

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """A JSON-serializable snapshot for ``db.statistics()``."""
        with self._lock:
            points = {
                name: {"calls": point.calls,
                       "armed": len(point._specs),
                       "injected": point.injected}
                for name, point in sorted(self._points.items())
                if point.calls or point._specs
            }
            return {
                "enabled": self.enabled,
                "seed": self.seed,
                "injections": self.injections,
                "points": points,
            }


#: Registry used by components not wired to an engine (always disabled).
NULL_FAULTS = FaultRegistry(enabled=False)
