"""Fault injection for the active OODBMS: named points, seeded schedules.

The paper's requirement that the active subsystem remain a full DBMS
under failure (Sections 2 and 6.4) is only testable if failures can be
provoked deterministically at storage, lock, and scheduler boundaries.
This package provides the mechanism; ``repro.bench.crash_torture``
builds the crash-point recovery harness on top of it, and
``docs/robustness.md`` documents the injection points and semantics.

Disabled by default: every engine owns a :class:`FaultRegistry` that is
inert (the shared :data:`NULL_POINT` pattern, mirroring ``repro.obs``)
unless ``ExecutionConfig(fault_injection=True)``.
"""

from repro.faults.registry import (
    BUFFER_EVICT,
    COMPOSER_DISPATCH,
    FaultPoint,
    FaultRegistry,
    FaultSpec,
    KNOWN_POINTS,
    LOCK_ACQUIRE,
    NULL_FAULTS,
    NULL_POINT,
    SCHEDULER_WORKER,
    STORAGE_CHECKPOINT,
    STORAGE_COMMIT,
    STORAGE_CRASH,
    STORAGE_PAGE_FLUSH,
    WAL_APPEND,
    WAL_FSYNC,
    WAL_TORN_TAIL,
)

__all__ = [
    "BUFFER_EVICT",
    "COMPOSER_DISPATCH",
    "FaultPoint",
    "FaultRegistry",
    "FaultSpec",
    "KNOWN_POINTS",
    "LOCK_ACQUIRE",
    "NULL_FAULTS",
    "NULL_POINT",
    "SCHEDULER_WORKER",
    "STORAGE_CHECKPOINT",
    "STORAGE_COMMIT",
    "STORAGE_CRASH",
    "STORAGE_PAGE_FLUSH",
    "WAL_APPEND",
    "WAL_FSYNC",
    "WAL_TORN_TAIL",
]
