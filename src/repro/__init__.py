"""REACH: a reproduction of the integrated active OODBMS of Buchmann,
Zimmermann, Blakeley & Wells (ICDE 1995).

Public API highlights:

* :class:`ReachDatabase` — the integrated active OODBMS facade.
* :func:`sentried` — the sentry mechanism (transparent event detection).
* Event specs (:class:`MethodEventSpec`, temporal specs, ...), the event
  algebra (:class:`Sequence`, :class:`Conjunction`, ...), consumption
  policies and coupling modes.
* :class:`ExecutionConfig` / :class:`ExecutionMode` — synchronous vs
  threaded execution.
* ``repro.layered`` — the Section 4 baseline: an active layer on top of a
  simulated closed commercial OODBMS.
"""

from repro.clock import Clock, SystemClock, VirtualClock
from repro.config import ExecutionConfig, ExecutionMode, TieBreakPolicy
from repro.core.algebra import (
    Closure,
    Conjunction,
    Disjunction,
    EventScope,
    History,
    Negation,
    Sequence,
    all_of,
    any_of,
    sequence_of,
)
from repro.core.consumption import ConsumptionPolicy
from repro.core.coupling import CouplingMode, is_supported, supported_modes
from repro.core.database import ReachDatabase
from repro.core.events import (
    AbsoluteEventSpec,
    EventCategory,
    EventOccurrence,
    FlowEventKind,
    FlowEventSpec,
    MethodEventSpec,
    MilestoneEventSpec,
    Moment,
    PeriodicEventSpec,
    RelativeEventSpec,
    SignalEventSpec,
    StateChangeEventSpec,
)
from repro.core.rules import Rule, RuleContext
from repro.oodb.oid import OID
from repro.oodb.sentry import sentried, is_sentried

__version__ = "1.0.0"

__all__ = [
    "Clock",
    "SystemClock",
    "VirtualClock",
    "ExecutionConfig",
    "ExecutionMode",
    "TieBreakPolicy",
    "Closure",
    "Conjunction",
    "Disjunction",
    "EventScope",
    "History",
    "Negation",
    "Sequence",
    "all_of",
    "any_of",
    "sequence_of",
    "ConsumptionPolicy",
    "CouplingMode",
    "is_supported",
    "supported_modes",
    "ReachDatabase",
    "AbsoluteEventSpec",
    "EventCategory",
    "EventOccurrence",
    "FlowEventKind",
    "FlowEventSpec",
    "MethodEventSpec",
    "MilestoneEventSpec",
    "Moment",
    "PeriodicEventSpec",
    "RelativeEventSpec",
    "SignalEventSpec",
    "StateChangeEventSpec",
    "Rule",
    "RuleContext",
    "OID",
    "sentried",
    "is_sentried",
    "__version__",
]
