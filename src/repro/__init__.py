"""REACH: a reproduction of the integrated active OODBMS of Buchmann,
Zimmermann, Blakeley & Wells (ICDE 1995).

Public API highlights:

* :class:`ReachDatabase` — the integrated active OODBMS facade: one
  :class:`ReachEngine` plus one default :class:`Session`.
* :class:`ReachEngine` / :class:`Session` — the layered kernel and the
  per-client scope; open many sessions over one engine for concurrent
  clients.
* :func:`sentried` — the sentry mechanism (transparent event detection).
* Event specs (:class:`MethodEventSpec`, temporal specs, ...), the event
  algebra (:class:`Sequence`, :class:`Conjunction`, ...), consumption
  policies and coupling modes.
* :class:`ExecutionConfig` / :class:`ExecutionMode` — synchronous vs
  threaded execution.
* Observability (``repro.obs``): :class:`Tracer`/:class:`Trace`/
  :class:`Span` and :class:`MetricsRegistry`, surfaced on the facade as
  ``db.trace()`` and ``db.metrics()`` when
  ``ExecutionConfig(observability=True)``.
* :class:`RuleBuilder` — the fluent form of rule definition, started
  with ``db.on(event)``.
* ``repro.layered`` — the Section 4 baseline: an active layer on top of a
  simulated closed commercial OODBMS.

``__all__`` below is the supported surface.  Engine internals (the event
service, scheduler, composer, transaction manager, ...) can still be
reached through this package for migration purposes, but such reach-ins
emit :class:`DeprecationWarning` — import them from their defining
modules instead.
"""

import warnings as _warnings

from repro.clock import Clock, SystemClock, VirtualClock
from repro.config import (
    ConcurrencyConfig,
    ExecutionConfig,
    ExecutionMode,
    ServerConfig,
    ShardingConfig,
    TieBreakPolicy,
)
from repro.core.algebra import (
    Closure,
    Conjunction,
    Disjunction,
    EventScope,
    History,
    Negation,
    Sequence,
    all_of,
    any_of,
    sequence_of,
)
from repro.core.consumption import ConsumptionPolicy
from repro.core.coupling import CouplingMode, is_supported, supported_modes
from repro.core.database import ReachDatabase
from repro.core.engine import ReachEngine
from repro.core.session import Session, ShardedSession
from repro.core.events import (
    AbsoluteEventSpec,
    EventCategory,
    EventOccurrence,
    EventSpec,
    FlowEventKind,
    FlowEventSpec,
    MethodEventSpec,
    MilestoneEventSpec,
    Moment,
    PeriodicEventSpec,
    RelativeEventSpec,
    SignalEventSpec,
    StateChangeEventSpec,
)
from repro.core.rule_builder import RuleBuilder
from repro.core.rules import Rule, RuleContext
from repro.errors import InjectedFault
from repro.faults import FaultRegistry
from repro.obs import MetricsRegistry, Span, Trace, Tracer
from repro.oodb.oid import OID
from repro.oodb.sentry import sentried, is_sentried

__version__ = "1.0.0"

__all__ = [
    "Clock",
    "SystemClock",
    "VirtualClock",
    "ConcurrencyConfig",
    "ExecutionConfig",
    "ExecutionMode",
    "ServerConfig",
    "ShardingConfig",
    "TieBreakPolicy",
    "Closure",
    "Conjunction",
    "Disjunction",
    "EventScope",
    "History",
    "Negation",
    "Sequence",
    "all_of",
    "any_of",
    "sequence_of",
    "ConsumptionPolicy",
    "CouplingMode",
    "is_supported",
    "supported_modes",
    "ReachDatabase",
    "ReachEngine",
    "Session",
    "ShardedSession",
    "RuleBuilder",
    "Tracer",
    "Trace",
    "Span",
    "MetricsRegistry",
    "FaultRegistry",
    "InjectedFault",
    "AbsoluteEventSpec",
    "EventCategory",
    "EventOccurrence",
    "EventSpec",
    "FlowEventKind",
    "FlowEventSpec",
    "MethodEventSpec",
    "MilestoneEventSpec",
    "Moment",
    "PeriodicEventSpec",
    "RelativeEventSpec",
    "SignalEventSpec",
    "StateChangeEventSpec",
    "Rule",
    "RuleContext",
    "OID",
    "sentried",
    "is_sentried",
    "__version__",
]

#: Engine internals resolvable from the top level for migration only;
#: each access emits a DeprecationWarning pointing at the home module.
_DEPRECATED_INTERNALS = {
    "EventService": "repro.core.eca_manager",
    "PrimitiveECAManager": "repro.core.eca_manager",
    "CompositeECAManager": "repro.core.eca_manager",
    "ReachRulePolicyManager": "repro.core.eca_manager",
    "Composer": "repro.core.composer",
    "RuleScheduler": "repro.core.scheduler",
    "LocalHistory": "repro.core.history",
    "GlobalHistory": "repro.core.history",
    "TemporalEventSource": "repro.core.temporal",
    "Transaction": "repro.oodb.transactions",
    "TransactionManager": "repro.oodb.transactions",
    "LockManager": "repro.oodb.locks",
    "SentryRegistry": "repro.oodb.sentry",
    "MetaArchitecture": "repro.oodb.meta",
    "StorageManager": "repro.storage.storage_manager",
    "WriteAheadLog": "repro.storage.wal",
    "BufferPool": "repro.storage.buffer",
}


def __getattr__(name: str):
    module_path = _DEPRECATED_INTERNALS.get(name)
    if module_path is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    _warnings.warn(
        f"importing {name!r} from {__name__!r} is deprecated; it is an "
        f"engine internal — import it from {module_path!r} if you really "
        "need it, or use the ReachDatabase facade",
        DeprecationWarning, stacklevel=2)
    import importlib
    return getattr(importlib.import_module(module_path), name)
