"""A small, safe expression language shared by OQL queries and rule DDL.

The paper's rule language embeds boolean condition expressions over bound
object variables (Section 6.1, the WaterLevel rule), and Open OODB couples
rules with its query language OQL[C++] (Section 7).  Both needs are served
by this module: a tokenizer, a Pratt parser producing a small AST, and an
evaluator that runs against an explicit variable environment — no
``eval()``, no access to anything not reachable from the bound variables.

Grammar (precedence low to high)::

    expr    := or
    or      := and ("or" and)*
    and     := not ("and" not)*
    not     := "not" not | cmp
    cmp     := add (("=="|"!="|"<"|"<="|">"|">="|"in") add)*
    add     := mul (("+"|"-") mul)*
    mul     := unary (("*"|"/"|"%") unary)*
    unary   := "-" unary | postfix
    postfix := primary ("." NAME | "(" args ")" | "[" expr "]")*
    primary := NUMBER | STRING | "true" | "false" | "null" | NAME
             | "(" expr ")" | "[" args "]"
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import QueryError


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Token:
    kind: str      # 'num', 'str', 'name', 'op', 'end'
    text: str
    position: int


_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<num>\d+\.\d+|\d+\.|\.\d+|\d+)
  | (?P<str>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|==|!=|->|[-+*/%<>=().,\[\]{};])
""", re.VERBOSE)


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QueryError(
                f"unexpected character {text[position]!r} at {position}")
        position = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup
        token_text = match.group()
        if kind == "op" and token_text == "->":
            # Accept the paper's C++ arrow as a synonym for '.'.
            token_text = "."
        tokens.append(Token(kind, token_text, match.start()))
    tokens.append(Token("end", "", len(text)))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

class Node:
    """Base AST node."""

    def evaluate(self, env: dict[str, Any]) -> Any:
        raise NotImplementedError

    def variables(self) -> set[str]:
        """Free variable names referenced by this expression."""
        return set()


@dataclass(frozen=True)
class Literal(Node):
    value: Any

    def evaluate(self, env: dict[str, Any]) -> Any:
        return self.value


@dataclass(frozen=True)
class Name(Node):
    name: str

    def evaluate(self, env: dict[str, Any]) -> Any:
        if self.name not in env:
            raise QueryError(f"unbound variable {self.name!r}")
        return env[self.name]

    def variables(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True)
class Attribute(Node):
    target: Node
    name: str

    def evaluate(self, env: dict[str, Any]) -> Any:
        obj = self.target.evaluate(env)
        if self.name.startswith("_"):
            raise QueryError(f"access to private attribute {self.name!r}")
        try:
            return getattr(obj, self.name)
        except AttributeError as exc:
            raise QueryError(str(exc)) from exc

    def variables(self) -> set[str]:
        return self.target.variables()


@dataclass(frozen=True)
class Call(Node):
    target: Node
    args: tuple[Node, ...]

    def evaluate(self, env: dict[str, Any]) -> Any:
        fn = self.target.evaluate(env)
        if not callable(fn):
            raise QueryError(f"{fn!r} is not callable")
        return fn(*[arg.evaluate(env) for arg in self.args])

    def variables(self) -> set[str]:
        names = self.target.variables()
        for arg in self.args:
            names |= arg.variables()
        return names


@dataclass(frozen=True)
class Index(Node):
    target: Node
    index: Node

    def evaluate(self, env: dict[str, Any]) -> Any:
        try:
            return self.target.evaluate(env)[self.index.evaluate(env)]
        except (KeyError, IndexError, TypeError) as exc:
            raise QueryError(str(exc)) from exc

    def variables(self) -> set[str]:
        return self.target.variables() | self.index.variables()


@dataclass(frozen=True)
class ListExpr(Node):
    items: tuple[Node, ...]

    def evaluate(self, env: dict[str, Any]) -> Any:
        return [item.evaluate(env) for item in self.items]

    def variables(self) -> set[str]:
        names: set[str] = set()
        for item in self.items:
            names |= item.variables()
        return names


_BINARY_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,   # OQL-style single '='
    "in": lambda a, b: a in b,
}


@dataclass(frozen=True)
class Binary(Node):
    op: str
    left: Node
    right: Node

    def evaluate(self, env: dict[str, Any]) -> Any:
        if self.op == "and":
            return bool(self.left.evaluate(env)) and \
                bool(self.right.evaluate(env))
        if self.op == "or":
            return bool(self.left.evaluate(env)) or \
                bool(self.right.evaluate(env))
        try:
            return _BINARY_OPS[self.op](self.left.evaluate(env),
                                        self.right.evaluate(env))
        except (TypeError, ZeroDivisionError) as exc:
            raise QueryError(f"{self.op}: {exc}") from exc

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class Unary(Node):
    op: str
    operand: Node

    def evaluate(self, env: dict[str, Any]) -> Any:
        value = self.operand.evaluate(env)
        if self.op == "-":
            return -value
        if self.op == "not":
            return not value
        raise QueryError(f"unknown unary operator {self.op!r}")

    def variables(self) -> set[str]:
        return self.operand.variables()


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_KEYWORDS = {"and", "or", "not", "in", "true", "false", "null", "none"}


class Parser:
    """Recursive-descent / Pratt parser over the token list."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers --------------------------------------------------------

    def peek(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "end":
            self._pos += 1
        return token

    def expect(self, text: str) -> Token:
        token = self.peek()
        if token.text != text:
            raise QueryError(
                f"expected {text!r} at position {token.position}, "
                f"got {token.text!r}")
        return self.advance()

    def at(self, text: str) -> bool:
        return self.peek().text == text

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token.kind == "name" and token.text == word

    # -- grammar ---------------------------------------------------------------

    def parse_expression(self) -> Node:
        return self._or()

    def _or(self) -> Node:
        node = self._and()
        while self.at_keyword("or"):
            self.advance()
            node = Binary("or", node, self._and())
        return node

    def _and(self) -> Node:
        node = self._not()
        while self.at_keyword("and"):
            self.advance()
            node = Binary("and", node, self._not())
        return node

    def _not(self) -> Node:
        if self.at_keyword("not"):
            self.advance()
            return Unary("not", self._not())
        return self._comparison()

    def _comparison(self) -> Node:
        node = self._additive()
        while self.peek().text in ("==", "!=", "<", "<=", ">", ">=", "=") \
                or self.at_keyword("in"):
            op = self.advance().text
            node = Binary(op, node, self._additive())
        return node

    def _additive(self) -> Node:
        node = self._multiplicative()
        while self.peek().text in ("+", "-"):
            op = self.advance().text
            node = Binary(op, node, self._multiplicative())
        return node

    def _multiplicative(self) -> Node:
        node = self._unary()
        while self.peek().text in ("*", "/", "%"):
            op = self.advance().text
            node = Binary(op, node, self._unary())
        return node

    def _unary(self) -> Node:
        if self.at("-"):
            self.advance()
            return Unary("-", self._unary())
        return self._postfix()

    def _postfix(self) -> Node:
        node = self._primary()
        while True:
            if self.at("."):
                self.advance()
                name = self.advance()
                if name.kind != "name":
                    raise QueryError(
                        f"expected attribute name at {name.position}")
                node = Attribute(node, name.text)
            elif self.at("("):
                self.advance()
                args = self._arguments(")")
                node = Call(node, tuple(args))
            elif self.at("["):
                self.advance()
                index = self.parse_expression()
                self.expect("]")
                node = Index(node, index)
            else:
                return node

    def _arguments(self, closing: str) -> list[Node]:
        args: list[Node] = []
        if not self.at(closing):
            args.append(self.parse_expression())
            while self.at(","):
                self.advance()
                args.append(self.parse_expression())
        self.expect(closing)
        return args

    def _primary(self) -> Node:
        token = self.peek()
        if token.kind == "num":
            self.advance()
            text = token.text
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "str":
            self.advance()
            return Literal(_unescape(token.text[1:-1]))
        if token.kind == "name":
            lowered = token.text.lower()
            if lowered == "true":
                self.advance()
                return Literal(True)
            if lowered == "false":
                self.advance()
                return Literal(False)
            if lowered in ("null", "none"):
                self.advance()
                return Literal(None)
            if token.text in _KEYWORDS:
                raise QueryError(
                    f"unexpected keyword {token.text!r} at {token.position}")
            self.advance()
            return Name(token.text)
        if token.text == "(":
            self.advance()
            node = self.parse_expression()
            self.expect(")")
            return node
        if token.text == "[":
            self.advance()
            return ListExpr(tuple(self._arguments("]")))
        raise QueryError(
            f"unexpected token {token.text!r} at position {token.position}")


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "'": "'", '"': '"',
            "\\": "\\"}


def _unescape(raw: str) -> str:
    """Resolve backslash escapes without touching other characters
    (``unicode_escape`` would mangle non-ASCII text)."""
    if "\\" not in raw:
        return raw
    out: list[str] = []
    index = 0
    while index < len(raw):
        char = raw[index]
        if char == "\\" and index + 1 < len(raw):
            out.append(_ESCAPES.get(raw[index + 1], raw[index + 1]))
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def parse_expression(text: str) -> Node:
    """Parse ``text`` into an AST, requiring full consumption."""
    parser = Parser(tokenize(text))
    node = parser.parse_expression()
    tail = parser.peek()
    if tail.kind != "end":
        raise QueryError(
            f"trailing input at position {tail.position}: {tail.text!r}")
    return node


def evaluate(text: str, env: Optional[dict[str, Any]] = None) -> Any:
    """Parse and evaluate in one step."""
    return parse_expression(text).evaluate(env or {})
