"""Measurement helpers shared by the benchmark harnesses.

Latency collection is built on the observability subsystem's
:class:`repro.obs.metrics.Histogram` (:class:`LatencyRecorder` is a thin
compatibility veneer over it), and :func:`merge_bench_json` accumulates
per-experiment metric sections into one JSON artifact
(``benchmarks/results/BENCH_obs.json``) so a benchmark run leaves a
machine-readable trail next to the human-readable ``.txt`` reports.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Optional

from repro.obs.metrics import Histogram


class Timer:
    """Context-manager wall-clock timer."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start


class LatencyRecorder(Histogram):
    """A benchmark-sized latency histogram.

    Subclasses the observability histogram with an unbounded-ish
    reservoir (benchmarks want exact percentiles over every sample) and
    keeps the original recorder API (``record``, ``count``, text
    ``summary``) for the existing harnesses.
    """

    def __init__(self, name: str = "latency") -> None:
        super().__init__(name, reservoir_size=1_000_000)

    def record(self, seconds: float) -> None:
        self.observe(seconds)

    def summary(self, unit: float = 1e6) -> str:  # type: ignore[override]
        """One-line summary; default unit microseconds."""
        return (f"n={self.count} mean={self.mean * unit:.1f} "
                f"p50={self.percentile(50) * unit:.1f} "
                f"p95={self.percentile(95) * unit:.1f} "
                f"p99={self.percentile(99) * unit:.1f}")


def merge_bench_json(path: str, section: str,
                     payload: dict[str, Any]) -> dict[str, Any]:
    """Merge one experiment's metrics into a shared JSON artifact.

    Reads ``path`` (tolerating absence or corruption), replaces
    ``section`` with ``payload``, writes the file back, and returns the
    merged document.  Benchmarks call this with their experiment id and
    a ``MetricsRegistry.snapshot()``-shaped payload so one run of the
    suite accumulates ``BENCH_obs.json`` section by section.
    """
    document: dict[str, Any] = {}
    if os.path.exists(path):
        try:
            with open(path) as f:
                document = json.load(f)
        except (OSError, ValueError):
            document = {}
    document[section] = payload
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as f:
        json.dump(document, f, indent=2, sort_keys=True)
    return document
