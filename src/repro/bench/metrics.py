"""Measurement helpers shared by the benchmark harnesses."""

from __future__ import annotations

import time
from typing import Optional


class Timer:
    """Context-manager wall-clock timer."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start


class LatencyRecorder:
    """Collects latency samples and reports summary statistics."""

    def __init__(self) -> None:
        self.samples: list[float] = []

    def record(self, seconds: float) -> None:
        self.samples.append(seconds)

    def time(self):
        recorder = self

        class _Sample:
            def __enter__(self):
                self._start = time.perf_counter()
                return self

            def __exit__(self, *exc_info):
                recorder.record(time.perf_counter() - self._start)

        return _Sample()

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(round(q / 100 * (len(ordered) - 1))))
        return ordered[index]

    def summary(self, unit: float = 1e6) -> str:
        """One-line summary; default unit microseconds."""
        return (f"n={self.count} mean={self.mean * unit:.1f} "
                f"p50={self.percentile(50) * unit:.1f} "
                f"p95={self.percentile(95) * unit:.1f} "
                f"p99={self.percentile(99) * unit:.1f}")
