"""Workload generators and measurement helpers for the benchmarks."""

from repro.bench.metrics import LatencyRecorder, Timer, merge_bench_json
from repro.bench.workloads import (
    PowerPlantWorkload,
    StockTickerWorkload,
    WorkflowWorkload,
)

__all__ = [
    "LatencyRecorder",
    "Timer",
    "merge_bench_json",
    "PowerPlantWorkload",
    "StockTickerWorkload",
    "WorkflowWorkload",
]
