"""Workload generators and measurement helpers for the benchmarks."""

from repro.bench.crash_torture import (
    TortureReport,
    run_database_torture,
    run_storage_torture,
)
from repro.bench.metrics import LatencyRecorder, Timer, merge_bench_json
from repro.bench.workloads import (
    PowerPlantWorkload,
    StockTickerWorkload,
    WorkflowWorkload,
)

__all__ = [
    "LatencyRecorder",
    "Timer",
    "merge_bench_json",
    "PowerPlantWorkload",
    "StockTickerWorkload",
    "WorkflowWorkload",
    "TortureReport",
    "run_database_torture",
    "run_storage_torture",
]
