"""Workload generators and measurement helpers for the benchmarks."""

from repro.bench.metrics import LatencyRecorder, Timer
from repro.bench.workloads import (
    PowerPlantWorkload,
    StockTickerWorkload,
    WorkflowWorkload,
)

__all__ = [
    "LatencyRecorder",
    "Timer",
    "PowerPlantWorkload",
    "StockTickerWorkload",
    "WorkflowWorkload",
]
