"""Synthetic workloads modelled on the paper's motivating applications.

Section 1 motivates active databases with power and communication network
management, commodity trading, workflow management, and plant/reactor
control; Section 6.1 works through the power-plant WaterLevel rule.  These
generators produce deterministic (seeded) event streams exercising the
same rule patterns at laptop scale — the substitute for the proprietary
monitoring applications the original project targeted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.oodb.sentry import sentried


# ---------------------------------------------------------------------------
# Power plant (Section 6.1's running example)
# ---------------------------------------------------------------------------

@sentried
class River:
    """The cooling-water river of the WaterLevel rule."""

    def __init__(self, name: str = "river", level: int = 50,
                 water_temp: float = 20.0):
        self.name = name
        self.level = level
        self.water_temp = water_temp

    def update_water_level(self, x: int) -> None:
        self.level = x

    def update_water_temp(self, t: float) -> None:
        self.water_temp = t

    def get_water_temp(self) -> float:
        return self.water_temp


@sentried
class Reactor:
    """The reactor whose planned power the contingency rule reduces."""

    def __init__(self, name: str = "BlockA", planned_power: float = 1000.0,
                 heat_output: float = 900000.0):
        self.name = name
        self.planned_power = planned_power
        self.heat_output = heat_output
        self.power_reductions = 0

    def get_heat_output(self) -> float:
        return self.heat_output

    def set_heat_output(self, value: float) -> None:
        self.heat_output = value

    def reduce_planned_power(self, fraction: float) -> None:
        self.planned_power *= (1.0 - fraction)
        self.power_reductions += 1


@dataclass
class PowerPlantWorkload:
    """A stream of sensor updates for one river/reactor pair.

    ``alarm_fraction`` controls how many updates satisfy the WaterLevel
    rule's condition (level below threshold with high temperature and heat
    load), so benchmarks can separate detection cost from rule-execution
    cost.
    """

    updates: int = 1000
    alarm_fraction: float = 0.05
    seed: int = 7

    def build_plant(self) -> tuple[River, Reactor]:
        return River("Rhein"), Reactor("BlockA")

    def events(self) -> Iterator[tuple[str, float]]:
        """Yield (kind, value) update instructions."""
        rng = random.Random(self.seed)
        for __ in range(self.updates):
            if rng.random() < self.alarm_fraction:
                yield "alarm", float(rng.randint(20, 36))
            else:
                roll = rng.random()
                if roll < 0.5:
                    yield "level", float(rng.randint(38, 80))
                elif roll < 0.8:
                    yield "temp", rng.uniform(10.0, 24.0)
                else:
                    yield "heat", rng.uniform(500000.0, 990000.0)

    def apply(self, river: River, reactor: Reactor,
              kind: str, value: float) -> None:
        if kind == "alarm":
            river.update_water_temp(25.5)
            reactor.set_heat_output(1_200_000.0)
            river.update_water_level(int(value))
        elif kind == "level":
            river.update_water_level(int(value))
        elif kind == "temp":
            river.update_water_temp(value)
        else:
            reactor.set_heat_output(value)


# ---------------------------------------------------------------------------
# Stock ticker (the Dow Jones / continuous-context example of Section 3.4)
# ---------------------------------------------------------------------------

@sentried
class Stock:
    def __init__(self, symbol: str, price: float = 100.0):
        self.symbol = symbol
        self.price = price
        self.volume = 0

    def tick(self, price: float, volume: int = 1) -> None:
        self.price = price
        self.volume += volume


@dataclass
class StockTickerWorkload:
    """Cross-transaction price ticks for a basket of symbols."""

    symbols: int = 8
    ticks: int = 500
    seed: int = 11
    start_price: float = 100.0
    volatility: float = 0.02

    def build_symbols(self) -> list[Stock]:
        return [Stock(f"SYM{i:02d}", self.start_price)
                for i in range(self.symbols)]

    def events(self) -> Iterator[tuple[int, float]]:
        """Yield (symbol index, new price) pairs following random walks."""
        rng = random.Random(self.seed)
        prices = [self.start_price] * self.symbols
        for __ in range(self.ticks):
            index = rng.randrange(self.symbols)
            change = rng.gauss(0.0, self.volatility)
            prices[index] = max(1.0, prices[index] * (1.0 + change))
            yield index, round(prices[index], 2)


# ---------------------------------------------------------------------------
# Workflow (the chronicle-context domain of Sections 1 and 3.4)
# ---------------------------------------------------------------------------

@sentried
class WorkflowTask:
    def __init__(self, task_id: int, steps: int):
        self.task_id = task_id
        self.steps = steps
        self.completed_steps = 0
        self.status = "pending"

    def start(self) -> None:
        self.status = "running"

    def complete_step(self) -> int:
        self.completed_steps += 1
        if self.completed_steps >= self.steps:
            self.status = "done"
        return self.completed_steps

    def escalate(self) -> None:
        self.status = "escalated"


@dataclass
class WorkflowWorkload:
    """Tasks with multiple steps and deadlines, processed in order."""

    tasks: int = 50
    max_steps: int = 5
    deadline: float = 10.0
    seed: int = 13

    def build_tasks(self) -> list[WorkflowTask]:
        rng = random.Random(self.seed)
        return [WorkflowTask(i, rng.randint(1, self.max_steps))
                for i in range(self.tasks)]
