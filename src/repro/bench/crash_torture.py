"""Crash-point recovery torture: truncate the WAL at *every* boundary.

The ARIES-lite recovery claim — winners replayed, losers absent, no
torn-tail confusion — is a universally quantified statement over crash
points, so this harness tests it universally: run a workload that leaves
winners (committed transactions) and losers (in-flight and aborted ones)
in the log, snapshot the checkpoint-time data file and the final WAL
image, then for every record boundary *and* a set of mid-record torn
offsets, materialize that crash state in a scratch directory, re-open
the database, and compare the recovered state against an independently
computed expectation.

Two levels:

* :func:`run_storage_torture` drives the :class:`StorageManager`
  directly — raw OID images, interleaved commits and in-flight writes,
  a deliberate abort;
* :func:`run_database_torture` drives a full :class:`ReachDatabase` —
  named sentried objects across user transactions, checking fetch-by-
  name, ``ObjectNotFoundError`` for not-yet-committed state, OID
  allocator monotonicity, and index consistency after each recovery.

The checkpoint-time snapshot of ``objects.dat`` is the *correct* page
image for every cut: the no-steal protocol only guarantees data pages
lag the log, and the checkpoint image is the maximal legal lag, so
recovery must reconstruct everything after it from the log alone.
"""

from __future__ import annotations

import os
import shutil
import threading
import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.config import ExecutionConfig, ShardingConfig
from repro.core.algebra import (
    Closure,
    Conjunction,
    Disjunction,
    EventScope,
    History,
    Negation,
    Sequence,
)
from repro.core.composer import Composer
from repro.core.consumption import ConsumptionPolicy
from repro.core.coupling import CouplingMode
from repro.core.database import ReachDatabase
from repro.core.events import EventOccurrence, SignalEventSpec
from repro.errors import ObjectNotFoundError, RecordNotFoundError
from repro.obs.flight import FlightRecorder, latest_dump, load_dump
from repro.obs.metrics import MetricsRegistry
from repro.oodb.oid import OID
from repro.oodb.sentry import sentried
from repro.storage.storage_manager import StorageManager
from repro.storage.wal import _FRAME, LogRecord, LogRecordType

__all__ = [
    "ComposerCutResult",
    "ComposerTortureReport",
    "CutResult",
    "TortureReport",
    "run_composer_torture",
    "run_database_torture",
    "run_group_commit_torture",
    "run_replica_torture",
    "run_storage_torture",
    "wal_record_boundaries",
    "torn_offsets",
    "parse_wal_prefix",
]


# ---------------------------------------------------------------------------
# WAL image analysis (independent of the WAL class's own scanner)
# ---------------------------------------------------------------------------

def wal_record_boundaries(data: bytes) -> list[int]:
    """Every record boundary offset in a WAL image, including 0 and EOF."""
    offsets = [0]
    offset = 0
    while offset + _FRAME.size <= len(data):
        length, __ = _FRAME.unpack_from(data, offset)
        nxt = offset + _FRAME.size + length
        if nxt > len(data):
            break
        offset = nxt
        offsets.append(offset)
    return offsets


def torn_offsets(boundaries: list[int]) -> list[int]:
    """Mid-record cut offsets: inside the frame header and the payload."""
    cuts = []
    for start, end in zip(boundaries, boundaries[1:]):
        cuts.append(start + _FRAME.size // 2)              # torn header
        if end - start > _FRAME.size + 1:
            cuts.append(start + _FRAME.size
                        + (end - start - _FRAME.size) // 2)  # torn payload
    return cuts


def parse_wal_prefix(data: bytes) -> list[LogRecord]:
    """Decode the longest consistent record prefix of a WAL image
    (mirrors recovery's lenient scan, implemented independently)."""
    records = []
    offset = 0
    end = len(data)
    while offset + _FRAME.size <= end:
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        if start + length > end:
            break
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            break
        records.append(LogRecord.decode(payload))
        offset = start + length
    return records


def _winner_ids(records: list[LogRecord]) -> set[int]:
    return {r.tx_id for r in records if r.type is LogRecordType.COMMIT}


def _replay_expected(base: dict[int, bytes],
                     records: list[LogRecord]) -> dict[int, bytes]:
    """The state recovery must produce: base image + winners in log order."""
    winners = _winner_ids(records)
    state = dict(base)
    for record in records:
        if record.tx_id not in winners:
            continue
        if record.type in (LogRecordType.INSERT, LogRecordType.UPDATE):
            state[record.oid_value] = record.after or b""
        elif record.type is LogRecordType.DELETE:
            state.pop(record.oid_value, None)
    return state


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

@dataclass
class CutResult:
    offset: int
    kind: str              # "boundary" | "torn"
    records: int           # consistent records in the truncated prefix
    winners: int           # committed transactions among them


@dataclass
class TortureReport:
    cuts: list[CutResult] = field(default_factory=list)
    #: winners/losers present in the *full* log image (workload sanity)
    total_winners: int = 0
    total_losers: int = 0
    #: largest number of commits one shared WAL force covered during the
    #: workload (0 when the workload did not measure it)
    max_commit_batch_observed: int = 0
    #: the flight dump the simulated crash wrote (None: no recorder ran)
    flight_dump_path: Optional[str] = None
    #: True iff the dump's final wal.flush/wal.group_flush record names
    #: the same LSN as the last record of the full WAL image — i.e. the
    #: post-mortem record agrees with what recovery will actually see.
    flight_lsn_matches: Optional[bool] = None

    @property
    def boundary_cuts(self) -> int:
        return sum(1 for cut in self.cuts if cut.kind == "boundary")

    @property
    def torn_cuts(self) -> int:
        return sum(1 for cut in self.cuts if cut.kind == "torn")


def _all_cuts(wal_image: bytes) -> list[tuple[int, str]]:
    boundaries = wal_record_boundaries(wal_image)
    cuts = [(offset, "boundary") for offset in boundaries]
    cuts += [(offset, "torn") for offset in torn_offsets(boundaries)]
    return sorted(cuts)


def _materialize(root: str, index: int, base_image: bytes,
                 wal_prefix: bytes) -> str:
    directory = os.path.join(root, f"cut-{index:03d}")
    if os.path.exists(directory):
        shutil.rmtree(directory)
    os.makedirs(directory)
    with open(os.path.join(directory, StorageManager.DATA_FILE), "wb") as fh:
        fh.write(base_image)
    with open(os.path.join(directory, StorageManager.LOG_FILE), "wb") as fh:
        fh.write(wal_prefix)
    return directory


def _read_file(path: str) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


def _validate_flight_dump(base_dir: str, wal_image: bytes,
                          report: TortureReport) -> None:
    """Check the crash-time flight dump against the surviving WAL.

    The simulated crash dumps the flight ring before dropping volatile
    state; the dump must be readable after recovery and its last recorded
    WAL force must name the LSN of the final record in the full image —
    the flight recorder's story and the log's must agree at the cut.
    """
    path = latest_dump(base_dir)
    report.flight_dump_path = path
    if path is None:
        return
    __, records = load_dump(path)
    flushes = [r for r in records
               if r["category"] in ("wal.flush", "wal.group_flush")]
    full_records = parse_wal_prefix(wal_image)
    last_lsn = full_records[-1].lsn if full_records else 0
    flight_lsn = flushes[-1]["lsn"] if flushes else 0
    report.flight_lsn_matches = flight_lsn == last_lsn


# ---------------------------------------------------------------------------
# Storage-level torture
# ---------------------------------------------------------------------------

def _check_storage_cuts(root: str, base_image: bytes,
                        base_state: dict[int, bytes], wal_image: bytes,
                        all_oids: set[int], report: TortureReport,
                        group_commit: bool = False) -> None:
    """Recover from every cut of ``wal_image`` and assert the invariants:
    winners replayed byte-for-byte, losers absent, allocator consistent."""
    for index, (offset, kind) in enumerate(_all_cuts(wal_image)):
        prefix = wal_image[:offset]
        records = parse_wal_prefix(prefix)
        expected = _replay_expected(base_state, records)
        directory = _materialize(root, index, base_image, prefix)
        recovered = StorageManager(directory, group_commit=group_commit)
        try:
            for oid_value, image in expected.items():
                got = recovered.read(None, OID(oid_value))
                if got != image:
                    raise AssertionError(
                        f"cut@{offset} ({kind}): OID {oid_value} recovered "
                        f"{got!r}, expected {image!r}")
            for oid_value in all_oids - set(expected):
                try:
                    recovered.read(None, OID(oid_value))
                except RecordNotFoundError:
                    pass
                else:
                    raise AssertionError(
                        f"cut@{offset} ({kind}): loser OID {oid_value} "
                        "survived recovery")
            if recovered.max_oid_value() != max(expected, default=0):
                raise AssertionError(
                    f"cut@{offset} ({kind}): max OID "
                    f"{recovered.max_oid_value()} != "
                    f"{max(expected, default=0)}")
        finally:
            recovered.close()
        report.cuts.append(CutResult(offset=offset, kind=kind,
                                     records=len(records),
                                     winners=len(_winner_ids(records))))


def run_storage_torture(root: str, group_commit: bool = False) -> TortureReport:
    """Exhaustive crash-point check over a raw StorageManager workload.

    The workload interleaves three winners (insert, update, delete) with
    two in-flight losers and one explicit abort, so every truncated
    prefix exercises a different winner/loser partition.  With
    ``group_commit`` the same workload runs through the commit barrier
    (single-threaded, so every committer leads its own flush) and every
    recovered instance is opened with the feature on.
    """
    base_dir = os.path.join(root, "sm-base")
    flight = FlightRecorder(capacity=512, directory=base_dir)
    sm = StorageManager(base_dir, group_commit=group_commit,
                        commit_wait_us=0.0, flight=flight)

    # Committed pre-state, made the checkpoint image.
    sm.begin(1)
    sm.write(1, OID(11), b"alpha-0")
    sm.write(1, OID(12), b"beta-0")
    sm.commit(1)
    sm.checkpoint()
    base_image = _read_file(os.path.join(base_dir, StorageManager.DATA_FILE))
    base_state = {11: b"alpha-0", 12: b"beta-0"}

    # Winners and losers, interleaved record by record.
    sm.begin(101)                      # loser 1: in flight at the crash
    sm.write(101, OID(12), b"beta-LOSER")
    sm.begin(10)                       # winner 1: update
    sm.write(10, OID(11), b"alpha-1")
    sm.commit(10)
    sm.begin(102)                      # loser 2: in flight at the crash
    sm.write(102, OID(13), b"gamma-LOSER")
    sm.begin(20)                       # winner 2: insert
    sm.write(20, OID(14), b"delta-0")
    sm.commit(20)
    sm.write(101, OID(11), b"alpha-LOSER")
    sm.begin(30)                       # winner 3: delete
    sm.delete(30, OID(12))
    sm.commit(30)
    sm.begin(103)                      # loser 3: explicit abort
    sm.write(103, OID(15), b"epsilon-LOSER")
    sm.abort(103)
    sm.flush()
    wal_image = _read_file(os.path.join(base_dir, StorageManager.LOG_FILE))
    sm.crash()
    sm.close()

    full_records = parse_wal_prefix(wal_image)
    report = TortureReport(
        total_winners=len(_winner_ids(full_records)),
        total_losers=len({r.tx_id for r in full_records
                          if r.type is LogRecordType.BEGIN}
                         - _winner_ids(full_records)))
    all_oids = {11, 12, 13, 14, 15}
    _validate_flight_dump(base_dir, wal_image, report)
    _check_storage_cuts(root, base_image, base_state, wal_image, all_oids,
                        report, group_commit=group_commit)
    return report


# ---------------------------------------------------------------------------
# Group-commit torture: concurrent committers sharing WAL forces
# ---------------------------------------------------------------------------

def run_group_commit_torture(root: str, threads: int = 8,
                             rounds: int = 2) -> TortureReport:
    """Crash-point torture over a *concurrently batched* commit workload.

    ``threads`` committers rendezvous on a barrier each round so their
    COMMIT records land in shared group flushes; two in-flight losers and
    one abort are interleaved.  The final WAL image therefore contains
    runs of COMMIT records that were covered by a single fsync, and the
    cut loop exercises torn tails *mid-batch* — a crash between the
    ``os.write`` and the ``fsync`` of a shared force must lose or keep
    each covered transaction exactly according to the surviving prefix.
    """
    base_dir = os.path.join(root, "gc-base")
    metrics = MetricsRegistry()
    flight = FlightRecorder(capacity=1024, directory=base_dir)
    sm = StorageManager(base_dir, metrics=metrics, group_commit=True,
                        commit_wait_us=2000.0, max_commit_batch=threads,
                        flight=flight)

    sm.begin(1)
    sm.write(1, OID(1), b"seed-0")
    sm.commit(1)
    sm.checkpoint()
    base_image = _read_file(os.path.join(base_dir, StorageManager.DATA_FILE))
    base_state = {1: b"seed-0"}

    sm.begin(_LOSER_TX_1)                      # loser 1: in flight
    sm.write(_LOSER_TX_1, OID(900_101), b"loser-1")

    all_oids = {1, 900_101, 900_102, 900_103}
    barrier = threading.Barrier(threads)
    failures: list[BaseException] = []

    def worker(tid: int) -> None:
        try:
            for rnd in range(rounds):
                tx = 100 + tid * 10 + rnd
                oid = 1000 + tid * 100 + rnd
                all_oids.add(oid)
                sm.begin(tx)
                sm.write(tx, OID(oid), b"gc-%d-%d" % (tid, rnd))
                barrier.wait()                  # commit together -> batch
                sm.commit(tx)
        except BaseException as exc:            # pragma: no cover - sanity
            failures.append(exc)

    workers = [threading.Thread(target=worker, args=(tid,))
               for tid in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    if failures:
        raise failures[0]

    sm.begin(_LOSER_TX_2)                      # loser 2: in flight
    sm.write(_LOSER_TX_2, OID(900_102), b"loser-2")
    sm.begin(900_003)                          # loser 3: explicit abort
    sm.write(900_003, OID(900_103), b"loser-3")
    sm.abort(900_003)
    sm.flush()
    wal_image = _read_file(os.path.join(base_dir, StorageManager.LOG_FILE))
    batch_hist = metrics.histogram("wal.commits_per_flush").summary()
    sm.crash()
    sm.close()

    full_records = parse_wal_prefix(wal_image)
    report = TortureReport(
        total_winners=len(_winner_ids(full_records)),
        total_losers=len({r.tx_id for r in full_records
                          if r.type is LogRecordType.BEGIN}
                         - _winner_ids(full_records)),
        max_commit_batch_observed=int(batch_hist.get("max") or 0))
    _validate_flight_dump(base_dir, wal_image, report)
    _check_storage_cuts(root, base_image, base_state, wal_image, all_oids,
                        report, group_commit=True)
    return report


# ---------------------------------------------------------------------------
# Replica torture: kill the primary mid-batch, replay on the standby
# ---------------------------------------------------------------------------

def run_replica_torture(root: str, threads: int = 8,
                        rounds: int = 2) -> TortureReport:
    """Kill-the-primary torture for WAL-shipped read replicas.

    The workload is the group-commit shape (barrier-rendezvoused
    committers whose COMMIT records share fsyncs, plus in-flight and
    aborted losers); every commit that *returns* to its worker is acked.
    The primary is then crashed and the claim under test is the
    durability equivalence of log shipping:

    * a replica tailing the *surviving* log converges to exactly the
      acked state — every acked transaction present (no lost acked
      commit), every loser absent (no phantom unacked commit);
    * for every prefix of the log (each record boundary and mid-record
      torn tail — a crash between the ``os.write`` and the ``fsync`` of
      a shared force), a fresh replica over that prefix shows exactly
      the state the prefix's committed transactions produce, matching
      what primary-side recovery itself would rebuild.
    """
    base_dir = os.path.join(root, "rt-base")
    metrics = MetricsRegistry()
    sm = StorageManager(base_dir, metrics=metrics, group_commit=True,
                        commit_wait_us=2000.0, max_commit_batch=threads)

    sm.begin(1)
    sm.write(1, OID(1), b"seed-0")
    sm.commit(1)
    sm.checkpoint()
    base_image = _read_file(os.path.join(base_dir, StorageManager.DATA_FILE))
    base_state = {1: b"seed-0"}

    sm.begin(_LOSER_TX_1)                      # loser 1: in flight
    sm.write(_LOSER_TX_1, OID(900_101), b"loser-1")

    all_oids = {1, 900_101, 900_102, 900_103}
    # The seed transaction's durability is the checkpoint *image*, not
    # the log, so it is not part of the acked-in-log set under test.
    acked: set[int] = set()
    barrier = threading.Barrier(threads)
    failures: list[BaseException] = []

    def worker(tid: int) -> None:
        try:
            for rnd in range(rounds):
                tx = 100 + tid * 10 + rnd
                oid = 1000 + tid * 100 + rnd
                all_oids.add(oid)
                sm.begin(tx)
                sm.write(tx, OID(oid), b"rt-%d-%d" % (tid, rnd))
                barrier.wait()                  # commit together -> batch
                sm.commit(tx)
                acked.add(tx)                   # commit returned == acked
        except BaseException as exc:            # pragma: no cover - sanity
            failures.append(exc)

    workers = [threading.Thread(target=worker, args=(tid,))
               for tid in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    if failures:
        raise failures[0]

    sm.begin(_LOSER_TX_2)                      # loser 2: in flight
    sm.write(_LOSER_TX_2, OID(900_102), b"loser-2")
    sm.begin(900_003)                          # loser 3: explicit abort
    sm.write(900_003, OID(900_103), b"loser-3")
    sm.abort(900_003)
    sm.flush()
    wal_image = _read_file(os.path.join(base_dir, StorageManager.LOG_FILE))
    batch_hist = metrics.histogram("wal.commits_per_flush").summary()
    sm.crash()                                 # the primary dies here
    sm.close()

    from repro.storage.replication import ReadReplica

    full_records = parse_wal_prefix(wal_image)
    winners = _winner_ids(full_records)
    if not acked <= winners:
        raise AssertionError(
            f"acked transactions missing from the surviving log: "
            f"{sorted(acked - winners)} — an acked commit was lost")

    report = TortureReport(
        total_winners=len(winners),
        total_losers=len({r.tx_id for r in full_records
                          if r.type is LogRecordType.BEGIN} - winners),
        max_commit_batch_observed=int(batch_hist.get("max") or 0))

    def check_replica(replica: ReadReplica, offset: int, kind: str,
                      expected: dict[int, bytes]) -> None:
        for oid_value, image in expected.items():
            got = replica.read(OID(oid_value))
            if got != image:
                raise AssertionError(
                    f"cut@{offset} ({kind}): replica has OID {oid_value} "
                    f"= {got!r}, expected {image!r}")
        for oid_value in all_oids - set(expected):
            if replica.exists(OID(oid_value)):
                raise AssertionError(
                    f"cut@{offset} ({kind}): phantom OID {oid_value} "
                    "on the replica")

    # The dead primary's surviving file IS the durable prefix, so the
    # tailer runs unbounded: the replica must converge to the acked state.
    live = ReadReplica(base_dir, os.path.join(root, "rt-replica"))
    try:
        live.poll(limit_lsn=None)
        check_replica(live, len(wal_image), "surviving",
                      _replay_expected(base_state, full_records))
        if live.applied_txs != len(winners):
            raise AssertionError(
                f"replica applied {live.applied_txs} transactions, "
                f"log holds {len(winners)} winners")
    finally:
        live.close()

    # Every earlier crash point: the replica over the prefix must agree
    # with what primary recovery itself would rebuild from it.
    for index, (offset, kind) in enumerate(_all_cuts(wal_image)):
        prefix = wal_image[:offset]
        records = parse_wal_prefix(prefix)
        expected = _replay_expected(base_state, records)
        directory = _materialize(root, index, base_image, prefix)
        replica = ReadReplica(directory,
                              os.path.join(directory, "replica"))
        try:
            replica.poll(limit_lsn=None)
            check_replica(replica, offset, kind, expected)
        finally:
            replica.close()
        report.cuts.append(CutResult(offset=offset, kind=kind,
                                     records=len(records),
                                     winners=len(_winner_ids(records))))
    return report


# ---------------------------------------------------------------------------
# Database-level torture
# ---------------------------------------------------------------------------

@sentried
class TortureRecord:
    """Named counter object the database-level workload mutates."""

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value

    def set_value(self, value: int) -> None:
        self.value = value


#: storage-level transaction ids for the in-flight losers; far above
#: anything the transaction manager hands out during the workload.
_LOSER_TX_1 = 900_001
_LOSER_TX_2 = 900_002


def run_database_torture(root: str, group_commit: bool = False) -> TortureReport:
    """Exhaustive crash-point check over a full active-database workload.

    Four user transactions (winners) mutate and create named objects,
    with two storage-level in-flight transactions (losers) interleaved.
    For each WAL cut the recovered database must show exactly the state
    after the k committed transactions the prefix retains: fetch-by-name
    values, ``ObjectNotFoundError`` for later objects, a fresh OID above
    every replayed one, and a consistent index over the survivors.
    With ``group_commit`` every commit (including each recovered
    instance's fresh persist) goes through the commit barrier.
    """
    config = ExecutionConfig(group_commit=group_commit, commit_wait_us=0.0)
    base_dir = os.path.join(root, "db-base")
    db = ReachDatabase(directory=base_dir, config=config)
    db.register_class(TortureRecord)
    objs = {name: TortureRecord(name) for name in ("alpha", "beta", "gamma")}
    with db.transaction():
        for name, obj in objs.items():
            db.persist(obj, name)
    db.checkpoint()
    base_image = _read_file(os.path.join(base_dir, StorageManager.DATA_FILE))

    # expected[k] = {name: value-or-None} after k committed transactions.
    expected: list[dict[str, int]] = [
        {"alpha": 0, "beta": 0, "gamma": 0}]

    def commit_state(**updates: int) -> None:
        state = dict(expected[-1])
        state.update(updates)
        expected.append(state)

    db.storage.begin(_LOSER_TX_1)
    db.storage.write(_LOSER_TX_1, OID(999_001), b"never-committed-1")

    with db.transaction():                       # winner 1
        objs["alpha"].set_value(10)
    commit_state(alpha=10)

    with db.transaction():                       # winner 2
        objs["beta"].set_value(20)
        objs["gamma"].set_value(21)
    commit_state(beta=20, gamma=21)

    db.storage.write(_LOSER_TX_1, OID(999_002), b"never-committed-2")
    db.storage.begin(_LOSER_TX_2)
    db.storage.write(_LOSER_TX_2, OID(999_003), b"never-committed-3")

    epsilon = TortureRecord("epsilon", 5)
    with db.transaction():                       # winner 3: new object
        db.persist(epsilon, "epsilon")
    commit_state(epsilon=5)

    with db.transaction():                       # winner 4
        objs["alpha"].set_value(40)
        epsilon.set_value(45)
    commit_state(alpha=40, epsilon=45)

    db.storage.flush()
    wal_image = _read_file(os.path.join(base_dir, StorageManager.LOG_FILE))
    db.storage.crash()            # dumps the engine's own flight ring
    db.close()

    full_records = parse_wal_prefix(wal_image)
    report = TortureReport(
        total_winners=len(_winner_ids(full_records)),
        total_losers=len({r.tx_id for r in full_records
                          if r.type is LogRecordType.BEGIN}
                         - _winner_ids(full_records)))
    _validate_flight_dump(base_dir, wal_image, report)

    for index, (offset, kind) in enumerate(_all_cuts(wal_image)):
        prefix = wal_image[:offset]
        records = parse_wal_prefix(prefix)
        committed = len(_winner_ids(records))
        state = expected[committed]
        directory = _materialize(root, index, base_image, prefix)
        recovered = ReachDatabase(directory=directory, config=config)
        try:
            recovered.register_class(TortureRecord)
            survivors = []
            for name in ("alpha", "beta", "gamma", "epsilon"):
                if name in state:
                    obj = recovered.fetch(name)
                    if obj.value != state[name]:
                        raise AssertionError(
                            f"cut@{offset} ({kind}): {name} recovered "
                            f"{obj.value}, expected {state[name]}")
                    survivors.append((name, state[name]))
                else:
                    try:
                        recovered.fetch(name)
                    except ObjectNotFoundError:
                        pass
                    else:
                        raise AssertionError(
                            f"cut@{offset} ({kind}): {name} should not "
                            "have survived recovery")
            # Loser images must be invisible at every level.
            for loser_oid in (999_001, 999_002, 999_003):
                if recovered.storage.exists(None, OID(loser_oid)):
                    raise AssertionError(
                        f"cut@{offset} ({kind}): loser OID {loser_oid} "
                        "survived recovery")
            # Index consistency over the survivors.
            recovered.create_index(TortureRecord, "value")
            rows = recovered.query("select r from TortureRecord r")
            got = sorted((row.name, row.value) for row in rows)
            if got != sorted(survivors):
                raise AssertionError(
                    f"cut@{offset} ({kind}): query saw {got}, "
                    f"expected {sorted(survivors)}")
            # Allocator monotonicity: a fresh persist must mint an OID
            # above everything the prefix replayed.
            floor = recovered.storage.max_oid_value()
            fresh = TortureRecord("fresh", -1)
            with recovered.transaction():
                fresh_oid = recovered.persist(fresh, f"fresh-{index}")
            if fresh_oid.value <= floor:
                raise AssertionError(
                    f"cut@{offset} ({kind}): fresh OID {fresh_oid.value} "
                    f"not above recovered max {floor}")
        finally:
            recovered.close()
        report.cuts.append(CutResult(offset=offset, kind=kind,
                                     records=len(records),
                                     winners=committed))
    return report


# ---------------------------------------------------------------------------
# Composer torture: kill mid-composition, recover, finish the composite
# ---------------------------------------------------------------------------

#: the three signal leaves every composer-torture case is built from
_CT_A = SignalEventSpec("ct-a")
_CT_B = SignalEventSpec("ct-b")
_CT_C = SignalEventSpec("ct-c")
_CT_NAMES = {"a": "ct-a", "b": "ct-b", "c": "ct-c"}
_CT_SPECS = {"a": _CT_A, "b": _CT_B, "c": _CT_C}
_CT_WINDOW = 1e9


def _ct_spec(make, policy: ConsumptionPolicy):
    """Scope a case's operator tree for engine-level multi-tx streams."""
    return make(policy).scoped(EventScope.MULTI_TX).within(_CT_WINDOW)


def composer_torture_cases() -> list[tuple[str, object, list[str]]]:
    """Every algebra operator with a stream that leaves a half-match
    between each consecutive pair of constituents.  ``(name, make_spec,
    stream)`` — ``make_spec(policy)`` builds the scoped spec."""
    return [
        ("seq",
         lambda p: _ct_spec(lambda q: Sequence(_CT_A, _CT_B).consumed(q), p),
         ["a", "b", "a", "b"]),
        ("conj",
         lambda p: _ct_spec(
             lambda q: Conjunction(_CT_A, _CT_B).consumed(q), p),
         ["a", "b", "b", "a"]),
        ("disj",
         lambda p: _ct_spec(
             lambda q: Disjunction(_CT_A, _CT_B).consumed(q), p),
         ["a", "b"]),
        ("neg",
         lambda p: _ct_spec(
             lambda q: Negation(_CT_C, _CT_A, _CT_B).consumed(q), p),
         ["a", "b", "a", "c", "b"]),
        ("closure",
         lambda p: _ct_spec(lambda q: Closure(_CT_A, _CT_B).consumed(q), p),
         ["a", "a", "b", "a", "b"]),
        ("history",
         lambda p: _ct_spec(
             lambda q: History(_CT_A, count=2,
                               window=_CT_WINDOW).consumed(q), p),
         ["a", "a", "a"]),
        ("nested",
         lambda p: _ct_spec(
             lambda q: Sequence(
                 Conjunction(_CT_A, _CT_B).consumed(q).within(_CT_WINDOW),
                 _CT_C).consumed(q), p),
         ["a", "b", "c", "b", "a", "c"]),
    ]


@dataclass
class ComposerCutResult:
    offset: int
    kind: str              # "boundary" | "torn"
    case: str              # "<operator>:<policy>"
    covered: int           # stream events the restored checkpoint captured
    replayed: int          # suffix events re-fed after recovery
    expected: int          # completions the uninterrupted oracle predicts
    fired: int             # completions the recovered engine actually fired


@dataclass
class ComposerTortureReport:
    cases: list[str] = field(default_factory=list)
    cuts: list[ComposerCutResult] = field(default_factory=list)
    #: completions the uninterrupted oracle fires over every full stream
    total_completions: int = 0
    #: COMPOSER_CHECKPOINT records present across the full WAL images
    checkpoint_records_seen: int = 0
    #: torn cuts landing *inside* a COMPOSER_CHECKPOINT frame — the CRC
    #: scan must end the prefix there and recovery must fall back to the
    #: previous durable checkpoint
    checkpoint_torn_cuts: int = 0
    #: COMPOSER_CHECKPOINT frames a data-only read replica skipped while
    #: tailing a dead primary's surviving log
    replica_checkpoints_skipped: int = 0
    #: cross-shard tx-id-frozenset group graphs restored from a crash
    #: image taken while the group's transaction was still open
    sharded_ghost_groups: int = 0
    #: completions a fresh same-transaction pair fired on the recovered
    #: sharded topology, next to the restored ghost group (must be 1)
    sharded_recovered_fired: int = 0

    @property
    def boundary_cuts(self) -> int:
        return sum(1 for cut in self.cuts if cut.kind == "boundary")

    @property
    def torn_cuts(self) -> int:
        return sum(1 for cut in self.cuts if cut.kind == "torn")


def _ct_occurrence(kind: str, index: int) -> EventOccurrence:
    spec = _CT_SPECS[kind]
    return EventOccurrence(spec, spec.category(), float(index),
                           tx_ids=frozenset({index}), seq=index)


def _ct_oracle_suffix(spec, stream: list[str], split: int) -> list[tuple]:
    """What an *uninterrupted* composer fires for ``stream[split:]`` after
    silently absorbing ``stream[:split]`` — expressed as sorted tuples of
    1-based stream indices (oracle occurrences carry ``seq = index``)."""
    oracle = Composer(spec)
    occurrences = [_ct_occurrence(kind, index)
                   for index, kind in enumerate(stream, 1)]
    for occurrence in occurrences[:split]:
        oracle.feed(occurrence)
    emissions: list[EventOccurrence] = []
    for occurrence in occurrences[split:]:
        emissions.extend(oracle.feed(occurrence))
    return sorted(
        tuple(sorted(c.seq for c in e.all_primitive_components()))
        for e in emissions)


def _ct_checkpoint_frames(wal_image: bytes) -> list[tuple[int, int]]:
    """(start, end) byte ranges of every COMPOSER_CHECKPOINT frame."""
    frames = []
    boundaries = wal_record_boundaries(wal_image)
    records = parse_wal_prefix(wal_image)
    for record, (start, end) in zip(records,
                                    zip(boundaries, boundaries[1:])):
        if record.type is LogRecordType.COMPOSER_CHECKPOINT:
            frames.append((start, end))
    return frames


def _run_composer_case(root: str, case: str, spec, stream: list[str],
                       report: ComposerTortureReport) -> str:
    """Run one (operator, policy) workload to a crash image, then recover
    from every cut and check exactly-once completion against the oracle.
    Returns the workload's base directory (its files are the crash image).
    """
    base_dir = os.path.join(root, f"ct-{case.replace(':', '-')}")
    db = ReachDatabase(directory=base_dir)
    db.rule(f"ct-{case}", spec, action=lambda ctx: None,
            coupling=CouplingMode.DETACHED)

    live_seq_to_index: dict[int, int] = {}
    cursor = {"index": 0}

    def live_listener(occurrence: EventOccurrence) -> None:
        live_seq_to_index[occurrence.seq] = cursor["index"]

    for leaf in set(spec.leaves()):
        db.engine.events.primitive_manager(leaf).add_listener(live_listener)

    # The pre-stream checkpoint: compaction emits the (empty) composer
    # snapshot, and its LSN marks "zero events covered".
    db.checkpoint()
    base_image = _read_file(os.path.join(base_dir, StorageManager.DATA_FILE))
    lsn_to_index = {
        db.engine.storage.wal_stats()["last_composer_checkpoint_lsn"]: 0}

    for index, kind in enumerate(stream, 1):
        cursor["index"] = index
        with db.transaction():
            db.signal(_CT_NAMES[kind])
        db.drain_detached()
        lsn = db.engine.storage.wal_stats()["last_composer_checkpoint_lsn"]
        if lsn in lsn_to_index:
            raise AssertionError(
                f"{case}: commit of event {index} emitted no composer "
                "checkpoint — the commit boundary lost detection state")
        lsn_to_index[lsn] = index

    db.storage.flush()
    wal_image = _read_file(os.path.join(base_dir, StorageManager.LOG_FILE))
    db.storage.crash()
    db.close()

    full_records = parse_wal_prefix(wal_image)
    report.checkpoint_records_seen += sum(
        1 for r in full_records
        if r.type is LogRecordType.COMPOSER_CHECKPOINT)
    report.total_completions += len(_ct_oracle_suffix(spec, stream, 0))
    checkpoint_frames = _ct_checkpoint_frames(wal_image)
    oracle_cache: dict[int, list[tuple]] = {}

    for cut_index, (offset, kind) in enumerate(_all_cuts(wal_image)):
        prefix = wal_image[:offset]
        records = parse_wal_prefix(prefix)
        checkpoints = [r for r in records
                       if r.type is LogRecordType.COMPOSER_CHECKPOINT]
        covered = lsn_to_index.get(checkpoints[-1].lsn, 0) \
            if checkpoints else 0
        if kind == "torn" and any(start < offset < end
                                  for start, end in checkpoint_frames):
            report.checkpoint_torn_cuts += 1

        directory = _materialize(
            os.path.join(root, f"ct-cuts-{case.replace(':', '-')}"),
            cut_index, base_image, prefix)
        recovered = ReachDatabase(directory=directory)
        fired: list[EventOccurrence] = []
        try:
            recovered.rule(f"ct-{case}", spec,
                           action=lambda ctx: fired.append(ctx.event),
                           coupling=CouplingMode.DETACHED)
            recovery_seq_to_index: dict[int, int] = {}
            recovery_cursor = {"index": 0}

            def recovery_listener(
                    occurrence: EventOccurrence,
                    __map=recovery_seq_to_index,
                    __cur=recovery_cursor) -> None:
                __map[occurrence.seq] = __cur["index"]

            for leaf in set(spec.leaves()):
                recovered.engine.events.primitive_manager(
                    leaf).add_listener(recovery_listener)
            for index in range(covered + 1, len(stream) + 1):
                recovery_cursor["index"] = index
                with recovered.transaction():
                    recovered.signal(_CT_NAMES[stream[index - 1]])
                recovered.drain_detached()

            if covered not in oracle_cache:
                oracle_cache[covered] = _ct_oracle_suffix(
                    spec, stream, covered)
            expected = oracle_cache[covered]
            index_of = {**live_seq_to_index, **recovery_seq_to_index}
            got = []
            for emission in fired:
                components = emission.all_primitive_components()
                try:
                    got.append(tuple(sorted(
                        index_of[c.seq] for c in components)))
                except KeyError as exc:
                    raise AssertionError(
                        f"{case} cut@{offset} ({kind}): completion "
                        f"references unknown constituent seq {exc}")
            got.sort()
            if got != expected:
                raise AssertionError(
                    f"{case} cut@{offset} ({kind}, {covered} events "
                    f"covered): recovered composer fired {got}, oracle "
                    f"predicts {expected} — "
                    + ("duplicate completion" if len(got) > len(expected)
                       else "forgotten half-match"))
        finally:
            recovered.close()
        report.cuts.append(ComposerCutResult(
            offset=offset, kind=kind, case=case, covered=covered,
            replayed=len(stream) - covered, expected=len(expected),
            fired=len(got)))
    report.cases.append(case)
    return base_dir


def _sharded_signal_names(shard_map, wanted_shards: list[int]) -> list[str]:
    """Signal names whose spec keys home on the given shards, in order."""
    names = []
    candidate = 0
    for want in wanted_shards:
        while True:
            name = f"ct-sig-{candidate}"
            candidate += 1
            if shard_map.shard_of_key(
                    SignalEventSpec(name).key()) == want:
                names.append(name)
                break
    return names


def _run_sharded_composer_case(root: str,
                               report: ComposerTortureReport) -> None:
    """Cross-shard group durability: a same-transaction composite whose
    leaves home on different shards is half-composed inside an *open*
    sharded transaction when another transaction's commit boundary
    checkpoints the composer — so the tx-id-frozenset group graph is on
    disk when the power cut lands.  The recovered topology must (a) hold
    the ghost group, (b) never complete it (its member transactions died
    with the crash), (c) compose a fresh same-transaction pair exactly
    once alongside it, and (d) reclaim it through the group sweep."""
    config = ExecutionConfig(sharding=ShardingConfig(shards=2))
    base_dir = os.path.join(root, "ct-sharded-base")
    crash_dir = os.path.join(root, "ct-sharded-crash")
    fired: list[str] = []
    db = ReachDatabase(directory=base_dir, config=config)
    a_name, b_name = _sharded_signal_names(db.engine.shard_map, [0, 1])
    spec = Sequence(SignalEventSpec(a_name), SignalEventSpec(b_name))
    db.rule("ct-sharded", spec, action=lambda ctx: fired.append("live"),
            coupling=CouplingMode.DEFERRED)
    victim = db.engine.create_session("ct-victim")
    witness = db.engine.create_session("ct-witness")
    victim_tx = victim.transaction()
    victim_tx.__enter__()
    db.engine.signal(a_name)           # half-match inside the open group
    with witness.transaction():
        pass                           # commit boundary -> checkpoint
    for shard in db.engine.shards:
        shard.storage.flush()
    # The on-disk state *is* the crash image: copy it while the victim
    # transaction is still open, exactly what a power cut preserves.
    if os.path.exists(crash_dir):
        shutil.rmtree(crash_dir)
    shutil.copytree(base_dir, crash_dir)
    victim_tx.__exit__(None, None, None)
    db.close()
    if fired:
        raise AssertionError("sharded half-match completed prematurely")

    recovered = ReachDatabase(directory=crash_dir, config=config)
    try:
        recovered.rule("ct-sharded", spec,
                       action=lambda ctx: fired.append("recovered"),
                       coupling=CouplingMode.DEFERRED)
        engine = recovered.engine
        home = engine.shards[engine.shard_for_key(spec.key())]
        composer = home.events.composite_manager(
            spec, wire_leaves=False).composer
        ghost_groups = [group for group in composer.groups()
                        if isinstance(group, frozenset)]
        report.sharded_ghost_groups = len(ghost_groups)
        if not ghost_groups:
            raise AssertionError(
                "crash image held a cross-shard group half-match but "
                "recovery restored no group graph")
        # (b) the ghost's terminator arrives in a *new* transaction: the
        # dead group must not complete, and same-tx scope keeps the new
        # transaction from pairing with it.
        with recovered.transaction():
            recovered.signal(b_name)
        if fired:
            raise AssertionError(
                "a dead pre-crash group completed after recovery")
        # (c) a fresh same-transaction pair must compose exactly once
        # alongside the restored ghost.
        with recovered.transaction():
            recovered.signal(a_name)
            recovered.signal(b_name)
        report.sharded_recovered_fired = len(fired)
        if report.sharded_recovered_fired != 1:
            raise AssertionError(
                f"fresh pair fired {report.sharded_recovered_fired} "
                "times next to a restored ghost group, expected 1")
        # (d) the sharded group sweep reclaims the ghost.
        for ghost in ghost_groups:
            engine.unregister_tx_group(ghost)
        if any(isinstance(group, frozenset) for group in composer.groups()):
            raise AssertionError("ghost group survived the group sweep")
    finally:
        recovered.close()


def run_composer_torture(
        root: str,
        operators: Optional[list[str]] = None,
        policies: Optional[list[ConsumptionPolicy]] = None,
) -> ComposerTortureReport:
    """Mid-composition crash torture: for every algebra operator and
    SNOOP policy, feed constituents one transaction at a time (so a
    durable composer checkpoint lands at each commit boundary), snapshot
    the crash image, and for every WAL record boundary *and* torn offset
    re-open the database, re-register the rule, feed exactly the
    constituents the restored checkpoint does not cover, and require the
    recovered composer to fire *exactly* the completions an uninterrupted
    oracle composer predicts — never a duplicate, never a forgotten
    half-match.  Torn cuts inside COMPOSER_CHECKPOINT frames exercise the
    fall-back-to-previous-checkpoint path; a final pass checks that a
    data-only read replica tailing a checkpoint-bearing log skips the
    frames cleanly and that a sharded topology recovers a cross-shard
    half-match exactly once.

    ``operators``/``policies`` restrict the matrix (default: all seven
    operator trees x all four policies).
    """
    report = ComposerTortureReport()
    wanted = composer_torture_cases()
    if operators is not None:
        wanted = [case for case in wanted if case[0] in operators]
    for policy in (policies or list(ConsumptionPolicy)):
        for name, make_spec, stream in wanted:
            case = f"{name}:{policy.value}"
            base_dir = _run_composer_case(
                root, case, make_spec(policy), stream, report)

    # A data-only replica over the last case's surviving log: every
    # COMPOSER_CHECKPOINT frame must be skipped — counted, never
    # prefix-ending, never breaking transaction application.
    from repro.storage.replication import ReadReplica

    replica = ReadReplica(base_dir, os.path.join(root, "ct-replica"))
    try:
        replica.poll(limit_lsn=None)
        stats = replica.stats()
        report.replica_checkpoints_skipped = \
            stats["composer_checkpoints_skipped"]
    finally:
        replica.close()
    if report.replica_checkpoints_skipped == 0:
        raise AssertionError(
            "replica saw no COMPOSER_CHECKPOINT frames — the workload "
            "should have shipped them")

    _run_sharded_composer_case(root, report)
    return report
