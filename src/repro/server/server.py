"""``reproserve``: the threaded socket front end over a REACH engine.

The server maps authenticated connections onto engine sessions — one
:class:`~repro.core.session.Session` (or ``ShardedSession``) per
connection, served by a dedicated thread so the session's serving lock
and transaction context stay on the thread that opened them.  On the
wire it speaks the length-prefixed JSON protocol from
:mod:`repro.server.protocol`.

The REACH paper's architecture treats the active OODBMS as a shared
service that many applications connect to; this module is that boundary,
and it is where the engine's transactional guarantees must survive
client failure:

* **Auth**: the first frame must be a ``hello`` carrying a bearer token
  (when ``ServerConfig.auth_tokens`` is set); the token names the
  *tenant*, which scopes rate limiting and idempotency.
* **Rate limiting**: a per-tenant token bucket
  (``rate_limit``/``rate_burst``); one tenant saturating its bucket
  never consumes another tenant's budget.
* **Idempotency**: any request may carry an ``idem`` key.  The response
  is cached *before* the ack is written, so a client whose connection
  died mid-ack can reconnect and retry the same key: the cached ack is
  replayed and the request is applied exactly once.  This is what makes
  ack-implies-durable hold across the wire — an acked commit is durable,
  and an unacked commit is safely retryable.
* **Graceful drain**: :meth:`ReachServer.drain` (wired to SIGTERM by
  :meth:`install_signal_handlers`) stops accepting, lets connections
  with open transactions finish them, shuts everything else down, and
  flushes telemetry.

The server registers itself with the engine via
``engine.attach_server(self)`` — the engine never imports this package
(layering: ``core`` sits below ``server``), it only holds the duck-typed
handle so ``statistics()["server"]`` and ``close()`` reach us.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import OrderedDict
from typing import Any, Optional

from repro.config import ServerConfig
from repro.errors import (
    ConnectionClosedError,
    FrameTooLargeError,
    InjectedFault,
    ObjectNotFoundError,
    ProtocolError,
    ReachClientError,
    ReachError,
    RuleError,
    TransactionError,
)
from repro.faults.registry import (
    SERVER_ACCEPT,
    SERVER_AUTH,
    SERVER_READ,
    SERVER_WRITE,
)
from repro.obs.metrics import Histogram
from repro.obs.tracer import _NULL_SPAN as _NULL_REQUEST_SPAN
from repro.oodb.oid import OID
from repro.oodb.sentry import sentried
from repro.server import protocol
from repro.server.protocol import (
    ERR_AUTH,
    ERR_BAD_REQUEST,
    ERR_DRAINING,
    ERR_MALFORMED,
    ERR_RATE_LIMITED,
    ERR_UNKNOWN_OP,
    PROTOCOL_VERSION,
    error_response,
    ok_response,
)

#: Tenant used when ``auth_tokens`` is None (open server).
DEFAULT_TENANT = "default"


@sentried(methods=["set", "touch"])
class Document:
    """The generic wire-addressable persistent class.

    Remote clients have no way to ship Python classes, so ``put``
    materialises their objects as Documents: a ``kind`` tag plus
    arbitrary JSON-able fields.  ``set`` and ``touch`` are monitored
    methods — rules can subscribe to ``after doc.set(...)`` exactly as
    they would to an application method, which keeps the active
    semantics reachable from the wire.
    """

    def __init__(self, kind: str = "document", **fields: Any):
        self.kind = kind
        for key, value in fields.items():
            setattr(self, key, value)

    def set(self, **fields: Any) -> int:
        for key, value in fields.items():
            setattr(self, key, value)
        return len(fields)

    def touch(self) -> None:
        return None


def serialize_object(obj: Any) -> Optional[dict[str, Any]]:
    """A wire-shaped view of a fetched object: type tag + public state."""
    if obj is None:
        return None
    state = {key: value for key, value in vars(obj).items()
             if not key.startswith("_")}
    return {"type": type(obj).__name__, "fields": state}


class _TokenBucket:
    """Per-tenant token bucket; refills continuously at ``rate``/s."""

    def __init__(self, rate: float, burst: int):
        self.rate = rate
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        with self._lock:
            now = time.monotonic()
            self._tokens = min(self.burst,
                               self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


class _IdempotencyCache:
    """Bounded LRU of ``(tenant, key) -> result`` for replayed requests."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.replays = 0
        self._entries: OrderedDict[tuple[str, str], Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, tenant: str, key: str) -> Any:
        with self._lock:
            token = (tenant, key)
            if token not in self._entries:
                return None
            self._entries.move_to_end(token)
            self.replays += 1
            return self._entries[token]

    def put(self, tenant: str, key: str, result: Any) -> None:
        with self._lock:
            token = (tenant, key)
            self._entries[token] = result
            self._entries.move_to_end(token)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _WireAbort(BaseException):
    """Private signal thrown through a transaction contextmanager to
    abort it; BaseException so nothing in the body can swallow it."""


class _TxHandle:
    """An imperatively driven ``session.transaction()``.

    The wire protocol needs explicit begin/commit/abort, but sessions
    (sharded ones especially) only expose the contextmanager — so the
    handle enters it on ``begin`` and exits it on ``commit``/``abort``.
    Both ends MUST run on the same thread (the session's serving lock is
    an RLock), which the thread-per-connection design guarantees.
    """

    def __init__(self, session: Any):
        self._cm = session.transaction()
        self.tx = self._cm.__enter__()
        self._done = False

    def commit(self) -> None:
        if self._done:
            return
        self._done = True
        self._cm.__exit__(None, None, None)

    def abort(self) -> None:
        if self._done:
            return
        self._done = True
        try:
            # Throwing through the generator aborts the transaction and
            # unwinds session.use(); the cm re-raising the same signal
            # makes __exit__ return False rather than raise.
            self._cm.__exit__(_WireAbort, _WireAbort("wire abort"), None)
        except _WireAbort:
            pass


class _Connection:
    """One accepted socket: its session, open transactions, counters."""

    _ids = iter(range(1, 1 << 62))

    def __init__(self, sock: socket.socket, peer: Any):
        self.id = next(self._ids)
        self.sock = sock
        self.peer = peer
        self.tenant = DEFAULT_TENANT
        self.session: Any = None
        self.tx_handles: list[_TxHandle] = []
        self.requests = 0
        self.closing = False

    def shutdown(self) -> None:
        """Unblock the serving thread's recv; idempotent and race-safe."""
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass


class ReachServer:
    """The threaded socket server; one instance per engine.

    Lifecycle: construct over an engine, :meth:`start` (binds, attaches
    to the engine, spawns the accept loop), then :meth:`drain` /
    :meth:`close`.  ``close`` is idempotent and is also invoked by
    ``engine.close()`` through the attach handle, so tearing down either
    side tears down both, exactly once.
    """

    def __init__(self, engine: Any, config: Optional[ServerConfig] = None):
        execution = getattr(engine, "config", None)
        if config is None:
            config = getattr(execution, "server", None) or ServerConfig()
        self.engine = engine
        self.config = config
        self.flight = engine.flight
        self._fp_accept = engine.faults.point(SERVER_ACCEPT)
        self._fp_read = engine.faults.point(SERVER_READ)
        self._fp_write = engine.faults.point(SERVER_WRITE)
        self._fp_auth = engine.faults.point(SERVER_AUTH)
        self._listener: Optional[socket.socket] = None
        self._address: Optional[tuple[str, int]] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._settled = threading.Condition(self._lock)
        self._connections: dict[int, _Connection] = {}
        self._threads: dict[int, threading.Thread] = {}
        self._buckets: dict[str, _TokenBucket] = {}
        self._idempotency = _IdempotencyCache(config.idempotency_capacity)
        self._draining = False
        self._closed = False
        self._started = False
        self.stop_requested = threading.Event()
        self._counters = {
            "accepted": 0, "rejected_auth": 0, "served": 0, "errors": 0,
            "rate_limited": 0, "protocol_errors": 0, "faults": 0,
        }
        self._tenant_counters: dict[str, dict[str, int]] = {}
        self._tenant_latency: dict[str, Histogram] = {}
        self._request_span_names: dict[str, str] = {}
        self._ops = {
            "ping": self._op_ping,
            "begin": self._op_begin,
            "commit": self._op_commit,
            "abort": self._op_abort,
            "put": self._op_put,
            "fetch": self._op_fetch,
            "call": self._op_call,
            "delete": self._op_delete,
            "query": self._op_query,
            "signal": self._op_signal,
            "define_rule": self._op_define_rule,
            "drop_rule": self._op_drop_rule,
            "firing_log": self._op_firing_log,
            "stats": self._op_stats,
            "server_stats": self._op_server_stats,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise RuntimeError("server is not started")
        return self._address

    def start(self) -> "ReachServer":
        if self._started:
            return self
        self._started = True
        # Remote clients create Documents; registering eagerly means the
        # class resolves on every shard before the first wire put.
        self.engine.register_class(Document)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(self.config.accept_backlog)
        self._listener = listener
        self._address = tuple(listener.getsockname()[:2])
        self.engine.attach_server(self)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="reproserve-accept", daemon=True)
        self._accept_thread.start()
        self.flight.record("server", action="start",
                           address=list(self.address))
        return self

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain request.

        The handler only records the request and sets
        :attr:`stop_requested`; the serve loop (see
        :mod:`repro.server.main`) observes the event and performs the
        actual drain outside signal context.
        """
        import signal

        def _handler(signum: int, frame: Any) -> None:
            self.flight.record("server", action="signal", signum=signum)
            self.stop_requested.set()

        signal.signal(signal.SIGTERM, _handler)
        signal.signal(signal.SIGINT, _handler)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting, finish in-flight transactions, flush telemetry.

        Connections with no open transaction are shut down immediately;
        connections mid-transaction keep their socket until their stack
        empties (their next post-transaction request closes them).
        Returns True when every connection finished inside ``timeout``
        (default ``ServerConfig.drain_timeout``), False when the
        deadline forced the rest.
        """
        if timeout is None:
            timeout = self.config.drain_timeout
        with self._lock:
            first = not self._draining
            self._draining = True
            idle = [conn for conn in self._connections.values()
                    if not conn.tx_handles]
            in_flight = sum(1 for conn in self._connections.values()
                            if conn.tx_handles)
        if first:
            self.flight.record("server", action="drain_begin",
                               in_flight=in_flight)
        self._close_listener()
        for conn in idle:
            conn.closing = True
            conn.shutdown()
        deadline = time.monotonic() + timeout
        with self._settled:
            while self._connections:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._settled.wait(remaining)
            drained = not self._connections
            stragglers = list(self._connections.values())
        for conn in stragglers:
            conn.closing = True
            conn.shutdown()
        with self._settled:
            deadline = time.monotonic() + 1.0
            while self._connections and time.monotonic() < deadline:
                self._settled.wait(0.1)
        try:
            self.engine.telemetry_pipeline.flush(timeout=5.0)
        except Exception:
            pass
        if first:
            self.flight.record("server", action="drain_end",
                               graceful=drained)
        return drained

    def close(self) -> None:
        """Drain, then tear everything down.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._started:
            self.drain()
            self._close_listener()
            if self._accept_thread is not None:
                self._accept_thread.join(timeout=5.0)
            with self._lock:
                threads = list(self._threads.values())
            for thread in threads:
                thread.join(timeout=5.0)
            self.flight.record("server", action="stop")
        self.engine.detach_server(self)

    def _close_listener(self) -> None:
        listener, self._listener = self._listener, None
        if listener is None:
            return
        try:
            # shutdown() unblocks a concurrent accept() (a bare close()
            # leaves the accept thread parked on Linux).
            listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            listener.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Accept / serve
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None
        while True:
            try:
                sock, peer = listener.accept()
            except OSError:
                return                      # listener closed: drain/close
            with self._lock:
                if self._draining or self._closed:
                    refused = True
                else:
                    refused = False
                    self._counters["accepted"] += 1
                    conn = _Connection(sock, peer)
                    self._connections[conn.id] = conn
                    thread = threading.Thread(
                        target=self._serve_connection, args=(conn,),
                        name=f"reproserve-conn-{conn.id}", daemon=True)
                    self._threads[conn.id] = thread
            if refused:
                try:
                    protocol.write_frame(sock, error_response(
                        None, ERR_DRAINING, "server is draining"))
                except Exception:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            thread.start()

    def _serve_connection(self, conn: _Connection) -> None:
        max_bytes = self.config.max_frame_bytes
        try:
            try:
                self._fp_accept.hit(peer=str(conn.peer))
            except InjectedFault:
                self._bump("faults")
                return
            self.flight.record("server", action="connect", conn=conn.id,
                               peer=str(conn.peer))
            if not self._handshake(conn):
                return
            while True:
                try:
                    self._fp_read.hit(conn=conn.id)
                    payload = protocol.read_frame(conn.sock,
                                                  max_bytes=max_bytes)
                except (ConnectionClosedError, OSError, InjectedFault):
                    return
                except (FrameTooLargeError, ProtocolError) as exc:
                    # Framing is no longer trustworthy after garbage:
                    # answer with a structured error, then hang up.
                    self._bump("protocol_errors")
                    code = (protocol.ERR_FRAME_TOO_LARGE
                            if isinstance(exc, FrameTooLargeError)
                            else ERR_MALFORMED)
                    self._try_write(conn, error_response(
                        None, code, str(exc)))
                    return
                response = self._dispatch(conn, payload)
                if not self._try_write(conn, response):
                    return
                if conn.closing:
                    return
                if self._draining and not conn.tx_handles:
                    return
        finally:
            self._teardown_connection(conn)

    def _handshake(self, conn: _Connection) -> bool:
        try:
            hello = protocol.read_frame(conn.sock,
                                        max_bytes=self.config.max_frame_bytes)
        except (ConnectionClosedError, OSError):
            return False
        except (FrameTooLargeError, ProtocolError) as exc:
            self._bump("protocol_errors")
            self._try_write(conn, error_response(None, ERR_MALFORMED,
                                                 str(exc)))
            return False
        if not isinstance(hello, dict) or hello.get("op") != "hello":
            self._bump("protocol_errors")
            self._try_write(conn, error_response(
                None, ERR_MALFORMED, "first frame must be a hello"))
            return False
        request_id = hello.get("id")
        try:
            self._fp_auth.hit(conn=conn.id)
            tenant = self._authenticate(hello.get("token"))
        except InjectedFault as exc:
            self._bump("faults")
            self._try_write(conn, error_response(
                request_id, ERR_AUTH, f"authentication unavailable: {exc}"))
            return False
        if tenant is None:
            self._bump("rejected_auth")
            self.flight.record("server", action="auth_reject", conn=conn.id)
            self._try_write(conn, error_response(
                request_id, ERR_AUTH, "invalid or missing bearer token"))
            return False
        conn.tenant = tenant
        client_name = hello.get("client") or f"wire-{conn.id}"
        conn.session = self.engine.create_session(
            name=f"{tenant}/{client_name}")
        context = protocol.decode_trace(hello.get(protocol.TRACE_KEY))
        if context is not None:
            self.flight.record("server", action="hello", conn=conn.id,
                               tenant=tenant, trace_id=context.trace_id)
        return self._try_write(conn, ok_response(request_id, {
            "protocol": PROTOCOL_VERSION,
            "server": "reproserve",
            "tenant": tenant,
            "session": conn.session.name,
        }))

    def _authenticate(self, token: Any) -> Optional[str]:
        tokens = self.config.auth_tokens
        if tokens is None:
            return DEFAULT_TENANT
        if not isinstance(token, str):
            return None
        return tokens.get(token)

    def _teardown_connection(self, conn: _Connection) -> None:
        # Disconnect teardown runs on the serving thread itself, the only
        # thread allowed to unwind this session's transactions.
        while conn.tx_handles:
            handle = conn.tx_handles.pop()
            try:
                handle.abort()
            except Exception:
                pass
        if conn.session is not None:
            try:
                conn.session.close()
            except Exception:
                pass
        conn.shutdown()
        try:
            conn.sock.close()
        except OSError:
            pass
        with self._settled:
            self._connections.pop(conn.id, None)
            self._threads.pop(conn.id, None)
            self._settled.notify_all()
        self.flight.record("server", action="disconnect", conn=conn.id,
                           requests=conn.requests)

    def _try_write(self, conn: _Connection, response: Any) -> bool:
        try:
            self._fp_write.hit(conn=conn.id)
            protocol.write_frame(conn.sock, response,
                                 max_bytes=self.config.max_frame_bytes)
            return True
        except InjectedFault:
            self._bump("faults")
            return False
        except FrameTooLargeError:
            # The *response* outgrew the frame bound; degrade rather
            # than hang up so the client gets a structured error.
            try:
                protocol.write_frame(conn.sock, error_response(
                    response.get("id") if isinstance(response, dict)
                    else None,
                    protocol.ERR_FRAME_TOO_LARGE,
                    "response exceeded the frame bound"))
                return True
            except Exception:
                return False
        except OSError:
            return False

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, conn: _Connection, payload: Any) -> dict[str, Any]:
        if not isinstance(payload, dict):
            self._bump("protocol_errors")
            return error_response(None, ERR_MALFORMED,
                                  "request must be a JSON object")
        request_id = payload.get("id")
        op = payload.get("op")
        if not isinstance(op, str):
            self._bump("protocol_errors")
            return error_response(request_id, ERR_MALFORMED,
                                  "request has no 'op' string")
        if op == "close":
            conn.closing = True
            return ok_response(request_id, {"closing": True})
        handler = self._ops.get(op)
        if handler is None:
            self._bump("errors")
            return error_response(request_id, ERR_UNKNOWN_OP,
                                  f"unknown op {op!r}")
        context = protocol.decode_trace(payload.get(protocol.TRACE_KEY))
        if not self._admit(conn):
            record = {"action": "rate_limited", "tenant": conn.tenant,
                      "op": op}
            if context is not None:
                record["trace_id"] = context.trace_id
            self.flight.record("server", **record)
            return error_response(request_id, ERR_RATE_LIMITED,
                                  f"tenant {conn.tenant!r} is over its "
                                  f"request budget")
        idem = payload.get("idem")
        if isinstance(idem, str):
            cached = self._idempotency.get(conn.tenant, idem)
            if cached is not None:
                self._bump("served")
                return ok_response(request_id, cached, replayed=True)
        conn.requests += 1
        # The request span: adopted from the client's wire context when
        # one rode along (so the whole server-side cascade lands in the
        # client's trace), locally rooted (subject to trace sampling)
        # otherwise.  Synchronous detection parents onto it through the
        # thread-local stack; detached work inherits via the occurrence.
        tracer = self.engine.tracer
        if context is not None and context.sampled:
            span_cm = tracer.span(
                self._span_name(op), "server",
                trace_id=context.trace_id, parent_id=context.span_id,
                tenant=conn.tenant, op=op)
        elif tracer.enabled:
            span_cm = tracer.span(self._span_name(op), "server",
                                  tenant=conn.tenant, op=op)
        else:
            span_cm = _NULL_REQUEST_SPAN
        started = time.perf_counter()
        failure: Optional[tuple[str, str, str]] = None
        result: Any = None
        with span_cm as span:
            try:
                result = handler(conn, payload)
            except ReachClientError as exc:
                failure = ("errors", exc.code, exc.message)
            except InjectedFault as exc:
                failure = ("faults", "fault", str(exc))
            except ObjectNotFoundError as exc:
                failure = ("errors", "not_found", str(exc))
            except TransactionError as exc:
                failure = ("errors", "tx_error", str(exc))
            except RuleError as exc:
                failure = ("errors", "rule_error", str(exc))
            except (ReachError, Exception) as exc:
                failure = ("errors", protocol.ERR_APP,
                           f"{type(exc).__name__}: {exc}")
            if span is not None and failure is not None:
                span.attributes["error"] = failure[1]
        self._observe_request(
            conn.tenant, time.perf_counter() - started,
            failed=failure is not None,
            trace_id=context.trace_id if context is not None else None)
        if failure is not None:
            counter, code, message = failure
            self._bump(counter)
            return error_response(request_id, code, message)
        self._bump("served")
        if isinstance(idem, str):
            # Cache BEFORE the ack write: if the connection dies during
            # the ack, a retry of the same key replays this result
            # instead of re-applying the request.
            self._idempotency.put(conn.tenant, idem, result)
        return ok_response(request_id, result)

    def _span_name(self, op: str) -> str:
        name = self._request_span_names.get(op)
        if name is None:
            name = self._request_span_names[op] = f"request:{op}"
        return name

    def _observe_request(self, tenant: str, elapsed: float,
                         failed: bool, trace_id: Optional[int]) -> None:
        """Per-tenant SLO bookkeeping for one served/errored request."""
        with self._lock:
            counters = self._tenant_counters.get(tenant)
            if counters is None:
                counters = self._tenant_counters[tenant] = {
                    "requests": 0, "rate_limited": 0, "errors": 0}
            if failed:
                counters["errors"] = counters.get("errors", 0) + 1
            histogram = self._tenant_latency.get(tenant)
            if histogram is None:
                histogram = self._tenant_latency[tenant] = Histogram(
                    f"server.tenant.{tenant}.latency")
        histogram.observe(elapsed, exemplar=trace_id)
        # Mirror into the engine registry so render_prometheus exports
        # the per-tenant series (no-ops when metrics are disabled).
        registry = self.engine.metrics_registry
        if registry.enabled:
            registry.counter(f"server.tenant.{tenant}.requests").inc()
            if failed:
                registry.counter(f"server.tenant.{tenant}.errors").inc()
            registry.histogram(
                f"server.tenant.{tenant}.latency").observe(
                    elapsed, exemplar=trace_id)

    def _admit(self, conn: _Connection) -> bool:
        tenant = conn.tenant
        with self._lock:
            counters = self._tenant_counters.setdefault(
                tenant, {"requests": 0, "rate_limited": 0, "errors": 0})
            counters["requests"] += 1
            if self.config.rate_limit is None:
                return True
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = _TokenBucket(
                    self.config.rate_limit, self.config.rate_burst)
        if bucket.try_acquire():
            return True
        with self._lock:
            self._tenant_counters[tenant]["rate_limited"] += 1
            self._counters["rate_limited"] += 1
        return False

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    @staticmethod
    def _require_str(payload: dict[str, Any], key: str) -> str:
        value = payload.get(key)
        if not isinstance(value, str) or not value:
            raise ReachClientError(ERR_BAD_REQUEST,
                                   f"missing or non-string {key!r}")
        return value

    @staticmethod
    def _target(payload: dict[str, Any]) -> Any:
        target = payload.get("target", payload.get("name"))
        if isinstance(target, int):
            return OID(target)
        if isinstance(target, str) and target:
            return target
        raise ReachClientError(ERR_BAD_REQUEST,
                               "missing 'target' (name or OID integer)")

    @staticmethod
    def _fields(payload: dict[str, Any], key: str = "fields") \
            -> dict[str, Any]:
        fields = payload.get(key) or {}
        if not isinstance(fields, dict) or \
                not all(isinstance(k, str) and k.isidentifier()
                        and not k.startswith("_") for k in fields):
            raise ReachClientError(
                ERR_BAD_REQUEST,
                f"{key!r} must map identifier names to values")
        return fields

    def _op_ping(self, conn: _Connection,
                 payload: dict[str, Any]) -> dict[str, Any]:
        return {"pong": True, "draining": self._draining}

    def _op_begin(self, conn: _Connection,
                  payload: dict[str, Any]) -> dict[str, Any]:
        if self._draining:
            raise ReachClientError(ERR_DRAINING,
                                   "server is draining; no new transactions")
        conn.tx_handles.append(_TxHandle(conn.session))
        return {"depth": len(conn.tx_handles)}

    def _op_commit(self, conn: _Connection,
                   payload: dict[str, Any]) -> dict[str, Any]:
        if not conn.tx_handles:
            raise ReachClientError(ERR_BAD_REQUEST, "no open transaction")
        handle = conn.tx_handles.pop()
        handle.commit()
        return {"depth": len(conn.tx_handles), "committed": True}

    def _op_abort(self, conn: _Connection,
                  payload: dict[str, Any]) -> dict[str, Any]:
        if not conn.tx_handles:
            raise ReachClientError(ERR_BAD_REQUEST, "no open transaction")
        handle = conn.tx_handles.pop()
        handle.abort()
        return {"depth": len(conn.tx_handles), "aborted": True}

    def _op_put(self, conn: _Connection,
                payload: dict[str, Any]) -> dict[str, Any]:
        name = self._require_str(payload, "name")
        fields = self._fields(payload)
        kind = payload.get("kind") or "document"
        session = conn.session
        with session.use():
            try:
                obj = session.fetch(name)
                created = False
            except ObjectNotFoundError:
                obj = None
                created = True
            if created:
                doc = Document(kind=kind, **fields)
                oid = session.persist(doc, name=name)
                return {"oid": getattr(oid, "value", None), "name": name,
                        "created": True}
            if not hasattr(obj, "set"):
                raise ReachClientError(
                    ERR_BAD_REQUEST,
                    f"{name!r} is a {type(obj).__name__}, not a Document")
            obj.set(**fields)
            return {"oid": None, "name": name, "created": False}

    def _op_fetch(self, conn: _Connection,
                  payload: dict[str, Any]) -> dict[str, Any]:
        target = self._target(payload)
        obj = conn.session.fetch(target)
        return {"object": serialize_object(obj)}

    def _op_call(self, conn: _Connection,
                 payload: dict[str, Any]) -> dict[str, Any]:
        target = self._target(payload)
        method = self._require_str(payload, "method")
        if method.startswith("_"):
            raise ReachClientError(ERR_BAD_REQUEST,
                                   "private methods are not callable")
        args = payload.get("args") or []
        kwargs = self._fields(payload, "kwargs")
        if not isinstance(args, list):
            raise ReachClientError(ERR_BAD_REQUEST, "'args' must be a list")
        session = conn.session
        with session.use():
            obj = session.fetch(target)
            bound = getattr(obj, method, None)
            if not callable(bound):
                raise ReachClientError(
                    ERR_BAD_REQUEST,
                    f"{type(obj).__name__} has no method {method!r}")
            result = bound(*args, **kwargs)
        return {"result": result}

    def _op_delete(self, conn: _Connection,
                   payload: dict[str, Any]) -> dict[str, Any]:
        target = self._target(payload)
        conn.session.delete(target)
        return {"deleted": True}

    def _op_query(self, conn: _Connection,
                  payload: dict[str, Any]) -> dict[str, Any]:
        text = self._require_str(payload, "text")
        params = self._fields(payload, "params")
        rows = conn.session.query(text, **params)
        return {"rows": [serialize_object(row) if hasattr(row, "__dict__")
                         else row for row in rows],
                "count": len(rows)}

    def _op_signal(self, conn: _Connection,
                   payload: dict[str, Any]) -> dict[str, Any]:
        name = self._require_str(payload, "name")
        parameters = self._fields(payload, "parameters")
        conn.session.signal(name, **parameters)
        return {"signalled": name}

    def _op_define_rule(self, conn: _Connection,
                        payload: dict[str, Any]) -> dict[str, Any]:
        ddl = self._require_str(payload, "ddl")
        rules = self.engine.define_rules(ddl)
        return {"rules": [rule.name for rule in rules]}

    def _op_drop_rule(self, conn: _Connection,
                      payload: dict[str, Any]) -> dict[str, Any]:
        name = self._require_str(payload, "name")
        self.engine.drop_rule(name)
        return {"dropped": name}

    def _op_firing_log(self, conn: _Connection,
                       payload: dict[str, Any]) -> dict[str, Any]:
        log = conn.session.firing_log()
        return {"count": len(log), "entries": [repr(entry) for entry in log]}

    def _op_stats(self, conn: _Connection,
                  payload: dict[str, Any]) -> dict[str, Any]:
        return self.engine.statistics()

    def _op_server_stats(self, conn: _Connection,
                         payload: dict[str, Any]) -> dict[str, Any]:
        return self.stats()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _bump(self, counter: str) -> None:
        with self._lock:
            self._counters[counter] += 1

    def stats(self) -> dict[str, Any]:
        """The ``statistics()["server"]`` section."""
        with self._lock:
            counters = dict(self._counters)
            tenants = {tenant: dict(values) for tenant, values
                       in self._tenant_counters.items()}
            latencies = dict(self._tenant_latency)
            active = len(self._connections)
            draining = self._draining
        for tenant, histogram in latencies.items():
            entry = tenants.get(tenant)
            if entry is not None:
                entry["latency"] = histogram.snapshot()
        try:
            address: Optional[list[Any]] = list(self.address)
        except RuntimeError:
            address = None
        return {
            "enabled": True,
            "address": address,
            "draining": draining,
            "connections": {"accepted": counters["accepted"],
                            "active": active,
                            "rejected_auth": counters["rejected_auth"]},
            "requests": {"served": counters["served"],
                         "errors": counters["errors"],
                         "protocol_errors": counters["protocol_errors"],
                         "rate_limited": counters["rate_limited"],
                         "faults": counters["faults"],
                         "idempotent_replays": self._idempotency.replays},
            "idempotency_entries": len(self._idempotency),
            "tenants": tenants,
        }

    def __enter__(self) -> "ReachServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = ("closed" if self._closed else
                 "draining" if self._draining else
                 "serving" if self._started else "new")
        return f"<ReachServer {state} connections={len(self._connections)}>"
