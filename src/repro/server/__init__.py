"""repro.server — the network boundary of the active OODBMS.

``protocol`` is the shared wire codec, ``server`` the threaded
``reproserve`` front end mapping authenticated connections onto engine
sessions, ``client`` the :class:`ReachClient` mirroring the in-process
Session API, and ``main`` the console entry point.
"""

from repro.server.client import ReachClient, RemoteRuleBuilder
from repro.server.protocol import PROTOCOL_VERSION
from repro.server.server import Document, ReachServer

__all__ = [
    "Document",
    "PROTOCOL_VERSION",
    "ReachClient",
    "ReachServer",
    "RemoteRuleBuilder",
]
