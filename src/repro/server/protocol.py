"""The REACH wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  The codec is deliberately symmetric — the server
(:mod:`repro.server.server`), the client (:mod:`repro.server.client`)
and the ``reproctl`` CLI all share the helpers here, so there is exactly
one place framing bugs can live.

Requests are JSON objects::

    {"op": "put", "id": 7, "name": "Rhein", "fields": {"level": 30},
     "idem": "client-42/put/1"}

Responses echo the request ``id``::

    {"id": 7, "ok": true, "result": {"oid": "OID(1025)", ...}}
    {"id": 7, "ok": false, "error": {"code": "rate_limited",
                                     "message": "..."}}

``idem`` is an optional idempotency key: the server caches the response
under ``(tenant, idem)`` and a retry of the same key returns the cached
response without re-applying the request (``"replayed": true`` rides
along), which is what makes retrying a commit over a cut connection
safe.

``trace`` is the reserved trace-context field (distributed tracing)::

    {"op": "signal", "id": 9, "name": "reading", "parameters": {...},
     "trace": {"id": 8123456789, "span": 17, "sampled": true}}

A sampled client mints a :class:`~repro.obs.tracer.TraceContext` per
request; the server adopts it as the explicit context of its request
span, so the whole server-side cascade (detection, cross-shard
composition, detached firing, WAL commit wait) lands in the client's
trace.  The field is optional and decoded tolerantly via
:func:`decode_trace` — frames from older clients simply have no
context, and garbage in the field never fails the request.

Defensive decoding: :class:`FrameDecoder` accepts arbitrary byte
garbage without ever raising anything but :class:`ProtocolError` /
:class:`FrameTooLargeError`, and a truncated stream simply leaves bytes
buffered — the read side decides whether that is a clean close or a cut
connection (:class:`ConnectionClosedError`).
"""

from __future__ import annotations

import json
import struct
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Optional

from repro.errors import (
    ConnectionClosedError,
    FrameTooLargeError,
    ProtocolError,
)
from repro.obs.tracer import TraceContext

#: Protocol revision, echoed in the hello response; bumped on any change
#: a deployed client could observe.  The ``trace`` field is additive and
#: ignored by older servers, so it does not bump the version.
PROTOCOL_VERSION = 1

#: Reserved request key carrying the wire trace context.
TRACE_KEY = "trace"

#: Default bound on one frame's payload (1 MiB); ServerConfig can lower
#: or raise it per deployment.
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")

# -- structured error codes -------------------------------------------------

ERR_AUTH = "auth"
ERR_RATE_LIMITED = "rate_limited"
ERR_MALFORMED = "malformed"
ERR_FRAME_TOO_LARGE = "frame_too_large"
ERR_UNKNOWN_OP = "unknown_op"
ERR_BAD_REQUEST = "bad_request"
ERR_APP = "app_error"
ERR_DRAINING = "draining"


def encode_frame(payload: Any,
                 max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize ``payload`` as one wire frame.

    Non-JSON-native values fall back to ``repr`` so introspection
    payloads (statistics snapshots carrying OIDs, enums, ...) always
    encode; a payload exceeding ``max_bytes`` raises
    :class:`FrameTooLargeError` before anything is written.
    """
    body = json.dumps(payload, separators=(",", ":"),
                      default=repr).encode("utf-8")
    if len(body) > max_bytes:
        raise FrameTooLargeError(
            f"frame of {len(body)} bytes exceeds the {max_bytes}-byte "
            f"bound")
    return _LENGTH.pack(len(body)) + body


def decode_payload(body: bytes) -> Any:
    """Decode one frame body; raises :class:`ProtocolError` on garbage."""
    try:
        return json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc


class FrameDecoder:
    """Incremental frame decoder for arbitrary byte chunks.

    ``feed(data)`` returns every complete payload the buffer now holds.
    A declared length above ``max_bytes`` raises
    :class:`FrameTooLargeError` and poisons the decoder (stream framing
    can no longer be trusted); undecodable JSON raises
    :class:`ProtocolError` likewise.  Truncated frames simply stay
    buffered.
    """

    def __init__(self, max_bytes: int = MAX_FRAME_BYTES):
        self.max_bytes = max_bytes
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> list[Any]:
        if self._poisoned:
            raise ProtocolError("decoder is poisoned by an earlier "
                                "framing error")
        self._buffer.extend(data)
        payloads = []
        while len(self._buffer) >= _LENGTH.size:
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > self.max_bytes:
                self._poisoned = True
                raise FrameTooLargeError(
                    f"declared frame length {length} exceeds the "
                    f"{self.max_bytes}-byte bound")
            if len(self._buffer) - _LENGTH.size < length:
                break
            body = bytes(self._buffer[_LENGTH.size:_LENGTH.size + length])
            del self._buffer[:_LENGTH.size + length]
            try:
                payloads.append(decode_payload(body))
            except ProtocolError:
                self._poisoned = True
                raise
        return payloads


# -- blocking-socket helpers ------------------------------------------------


def _recv_exactly(sock: Any, count: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            raise ConnectionClosedError(
                f"connection closed after {len(chunks)} of {count} "
                f"expected bytes")
        chunks.extend(chunk)
    return bytes(chunks)


def read_frame(sock: Any, max_bytes: int = MAX_FRAME_BYTES) -> Any:
    """Read one complete frame from a blocking socket.

    Raises :class:`ConnectionClosedError` on EOF (mid-frame EOF
    included), :class:`FrameTooLargeError` / :class:`ProtocolError` on
    framing garbage.
    """
    header = _recv_exactly(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > max_bytes:
        raise FrameTooLargeError(
            f"declared frame length {length} exceeds the "
            f"{max_bytes}-byte bound")
    return decode_payload(_recv_exactly(sock, length))


def write_frame(sock: Any, payload: Any,
                max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Encode and send one frame on a blocking socket."""
    sock.sendall(encode_frame(payload, max_bytes=max_bytes))


# -- request / response shapes ----------------------------------------------


def request(op: str, request_id: int, **params: Any) -> dict[str, Any]:
    payload = {"op": op, "id": request_id}
    payload.update(params)
    return payload


def ok_response(request_id: Optional[int], result: Any,
                **extra: Any) -> dict[str, Any]:
    payload = {"id": request_id, "ok": True, "result": result}
    payload.update(extra)
    return payload


def error_response(request_id: Optional[int], code: str,
                   message: str) -> dict[str, Any]:
    return {"id": request_id, "ok": False,
            "error": {"code": code, "message": message}}


def encode_trace(context: TraceContext) -> dict[str, Any]:
    """The wire form of a trace context (the ``trace`` request field)."""
    return context.to_wire()


def decode_trace(value: Any) -> Optional[TraceContext]:
    """Decode a request's ``trace`` field; None when absent/malformed.

    Never raises: a request from an older client (no field) or a
    corrupted field must be served normally, just untraced.
    """
    return TraceContext.from_wire(value)


# -- admin-endpoint (HTTP) helpers ------------------------------------------
#
# The loopback admin endpoint speaks plain HTTP; reproctl used to carry
# its own ad-hoc fetch code.  Centralising it here keeps every piece of
# on-the-wire behaviour (framing, errors, auth headers) in one module.


class AdminUnreachable(ConnectionClosedError):
    """The admin endpoint could not be reached (refused, timeout, DNS)."""


def http_get(host: str, port: int, path: str,
             params: Optional[dict[str, Any]] = None,
             timeout: float = 5.0,
             token: Optional[str] = None) -> tuple[str, str]:
    """GET ``path`` from an admin endpoint; returns (content-type, body).

    ``params`` with false-y values are dropped; ``token`` (if given)
    travels as a bearer ``Authorization`` header.  Raises
    :class:`AdminUnreachable` when no server answers.
    """
    query = urllib.parse.urlencode(
        {key: value for key, value in (params or {}).items() if value})
    url = f"http://{host}:{port}{path}" + (f"?{query}" if query else "")
    req = urllib.request.Request(url)
    if token:
        req.add_header("Authorization", f"Bearer {token}")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            content_type = response.headers.get("Content-Type", "")
            return content_type, response.read().decode("utf-8")
    except urllib.error.HTTPError:
        raise                     # a response *was* served; caller's call
    except (urllib.error.URLError, OSError) as exc:
        raise AdminUnreachable(
            f"cannot reach {host}:{port}: {exc}") from exc
