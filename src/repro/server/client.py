"""``ReachClient``: the Python client for a ``reproserve`` endpoint.

The client mirrors the in-process :class:`~repro.core.session.Session`
API over the wire — ``begin``/``commit``/``abort`` (plus the
``transaction()`` contextmanager), ``put``/``fetch``/``call``/``query``,
signals, rule definition through a fluent builder, and statistics — so
moving an application from embedded to client/server is a one-line
change of what it constructs.

Reliability model:

* Every request carries a client-generated id; responses are matched by
  echoing it.
* ``commit(idempotent=True)`` (and any call given an ``idem=`` key)
  tags the request with an idempotency key.  If the connection dies
  before the ack arrives, :meth:`ReachClient.retry` — or a manual
  reconnect + re-send of the same key — returns the server's cached
  ack without re-applying the request.  This is the client half of the
  ack-implies-durable contract.
* Server-side errors surface as :class:`~repro.errors.ReachClientError`
  (``exc.code`` holds the structured error code:
  ``auth``, ``rate_limited``, ``not_found``, ``tx_error``, ...).
"""

from __future__ import annotations

import itertools
import socket
import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.errors import (
    AuthenticationError,
    ConnectionClosedError,
    ProtocolError,
    RateLimitedError,
    ReachClientError,
)
from repro.obs.tracer import TraceContext, mint_trace_id
from repro.server import protocol


class RemoteRuleBuilder:
    """Fluent builder assembling REACH rule DDL for a remote engine.

    Mirrors the in-process fluent rule API in spirit, but compiles to
    the textual rule language (the only wire-safe representation of
    conditions and actions)::

        client.rule("LowWater").priority(7) \\
              .on("after doc.set(fields)") \\
              .declare("Document", "doc") \\
              .when("doc.level < 10", coupling="immediate") \\
              .do("doc.touch()", coupling="deferred") \\
              .define()
    """

    def __init__(self, client: "ReachClient", name: str):
        self._client = client
        self._name = name
        self._priority: Optional[int] = None
        self._decls: list[str] = []
        self._event: Optional[str] = None
        self._condition: Optional[tuple[str, str]] = None
        self._actions: list[tuple[str, str]] = []

    def priority(self, value: int) -> "RemoteRuleBuilder":
        self._priority = int(value)
        return self

    def declare(self, class_name: str, var: str,
                named: Optional[str] = None) -> "RemoteRuleBuilder":
        decl = f"decl {class_name} {var}"
        if named is not None:
            decl += f' named "{named}"'
        self._decls.append(decl + ";")
        return self

    def on(self, event: str) -> "RemoteRuleBuilder":
        """The event clause body, e.g. ``"after doc.set(fields)"`` or a
        composite like ``"after a.set(x) then after b.set(y) within 5"``."""
        self._event = event.rstrip(";")
        return self

    def when(self, expr: str,
             coupling: str = "immediate") -> "RemoteRuleBuilder":
        self._condition = (_COUPLING[coupling], expr)
        return self

    def do(self, stmt: str,
           coupling: str = "immediate") -> "RemoteRuleBuilder":
        self._actions.append((_COUPLING[coupling], stmt))
        return self

    def ddl(self) -> str:
        if self._event is None:
            raise ValueError(f"rule {self._name!r} has no event clause")
        if not self._actions:
            raise ValueError(f"rule {self._name!r} has no action")
        lines = [f"rule {self._name} {{"]
        if self._priority is not None:
            lines.append(f"  prio {self._priority};")
        for decl in self._decls:
            lines.append(f"  {decl}")
        lines.append(f"  event {self._event};")
        if self._condition is not None:
            mode, expr = self._condition
            lines.append(f"  cond {mode} {expr};")
        first_mode = self._actions[0][0]
        stmts = ", ".join(stmt for _, stmt in self._actions)
        lines.append(f"  action {first_mode} {stmts};")
        lines.append("};")
        return "\n".join(lines)

    def define(self) -> list[str]:
        """Ship the assembled DDL; returns the defined rule names."""
        return self._client.define_rules(self.ddl())


_COUPLING = {
    "immediate": "imm", "imm": "imm",
    "deferred": "def", "def": "def",
    "detached": "det", "det": "det",
}


class ReachClient:
    """A connection to a ``reproserve`` endpoint.

    Thread-compatible, not thread-safe: one client is one session, and
    requests are serialized by an internal lock just like the server
    side serializes a session.  Open one client per worker thread.
    """

    _client_ids = itertools.count(1)

    def __init__(self, host: str, port: int,
                 token: Optional[str] = None,
                 client_name: Optional[str] = None,
                 timeout: Optional[float] = 30.0,
                 max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
                 trace_sampling: float = 1.0):
        if not 0.0 <= trace_sampling <= 1.0:
            raise ValueError("trace_sampling must be in [0.0, 1.0]")
        self.host = host
        self.port = port
        self.token = token
        self.client_name = client_name or f"client-{next(self._client_ids)}"
        self.timeout = timeout
        self.max_frame_bytes = max_frame_bytes
        #: fraction of requests that mint a trace context (the client
        #: half of distributed tracing; the server only records adopted
        #: contexts when its engine runs with observability on).
        self.trace_sampling = trace_sampling
        self._sample_acc = 0.0
        #: the context minted for the most recent sampled request —
        #: ``client.last_trace.trace_id`` is what ``/trace/<id>`` and
        #: ``reproctl trace`` take.
        self.last_trace: Optional[TraceContext] = None
        self._lock = threading.Lock()
        self._request_ids = itertools.count(1)
        self._idem_ids = itertools.count(1)
        self._sock: Optional[socket.socket] = None
        self.tenant: Optional[str] = None
        self.session_name: Optional[str] = None
        self.last_replayed = False
        self._connect()

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    def _connect(self) -> None:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        hello = self._roundtrip("hello", token=self.token,
                                client=self.client_name)
        self.tenant = hello["tenant"]
        self.session_name = hello["session"]

    def reconnect(self) -> None:
        """Drop the current socket (if any) and re-handshake.  The new
        connection is a fresh server session; idempotency keys are the
        only state that survives (they live server-side, per tenant)."""
        with self._lock:
            self._close_socket()
            self._connect()

    def _close_socket(self) -> None:
        sock = self._sock
        self._sock = None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _roundtrip(self, op: str, **params: Any) -> Any:
        sock = self._sock
        if sock is None:
            raise ConnectionClosedError("client is not connected")
        request_id = next(self._request_ids)
        params = {key: value for key, value in params.items()
                  if value is not None}
        frame = protocol.request(op, request_id, **params)
        context = self._mint_trace()
        if context is not None:
            frame[protocol.TRACE_KEY] = protocol.encode_trace(context)
        try:
            protocol.write_frame(sock, frame,
                                 max_bytes=self.max_frame_bytes)
            response = protocol.read_frame(sock,
                                           max_bytes=self.max_frame_bytes)
        except (ConnectionClosedError, OSError) as exc:
            self._close_socket()
            if isinstance(exc, ConnectionClosedError):
                raise
            raise ConnectionClosedError(f"connection lost: {exc}") from exc
        if not isinstance(response, dict) or "ok" not in response:
            raise ProtocolError(f"malformed response: {response!r}")
        if response.get("id") not in (request_id, None):
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}")
        self.last_replayed = bool(response.get("replayed"))
        if response["ok"]:
            return response.get("result")
        error = response.get("error") or {}
        code = error.get("code", "app_error")
        message = error.get("message", "unknown server error")
        if code == protocol.ERR_AUTH:
            raise AuthenticationError(message)
        if code == protocol.ERR_RATE_LIMITED:
            raise RateLimitedError(message)
        raise ReachClientError(code, message)

    def _mint_trace(self) -> Optional[TraceContext]:
        """The per-request sampling decision; None when unsampled.

        The unsampled path is one float add and a compare — the
        near-zero budget the obs-overhead CI job asserts.
        """
        rate = self.trace_sampling
        if rate <= 0.0:
            return None
        if rate < 1.0:
            acc = self._sample_acc + rate
            if acc < 1.0:
                self._sample_acc = acc
                return None
            self._sample_acc = acc - 1.0
        context = TraceContext(mint_trace_id())
        self.last_trace = context
        return context

    def call_op(self, op: str, **params: Any) -> Any:
        """Escape hatch: send any raw protocol op."""
        with self._lock:
            return self._roundtrip(op, **params)

    def fresh_idempotency_key(self) -> str:
        """A key unique to this client instance, for tagging retryable
        requests."""
        return f"{self.client_name}/{next(self._idem_ids)}"

    # ------------------------------------------------------------------
    # Session API
    # ------------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.call_op("ping")

    def begin(self) -> int:
        """Open a transaction; returns the new nesting depth."""
        return self.call_op("begin")["depth"]

    def commit(self, idem: Optional[str] = None,
               idempotent: bool = False) -> dict[str, Any]:
        """Commit the innermost open transaction.

        With ``idempotent=True`` (or an explicit ``idem`` key) the
        commit is tagged so a retry after a lost ack returns the cached
        ack instead of failing with "no open transaction"."""
        if idempotent and idem is None:
            idem = self.fresh_idempotency_key()
        return self.call_op("commit", idem=idem)

    def abort(self) -> dict[str, Any]:
        return self.call_op("abort")

    @contextmanager
    def transaction(self) -> Iterator["ReachClient"]:
        """``with client.transaction():`` — commit on success, abort on
        exception, like the in-process session."""
        self.begin()
        try:
            yield self
        except BaseException:
            try:
                self.abort()
            except (ReachClientError, ConnectionClosedError):
                pass
            raise
        else:
            self.commit()

    def put(self, name: str, fields: Optional[dict[str, Any]] = None,
            kind: str = "document",
            idem: Optional[str] = None) -> dict[str, Any]:
        """Create (or update the fields of) the named Document."""
        return self.call_op("put", name=name, fields=fields or {},
                            kind=kind, idem=idem)

    def fetch(self, target: Any) -> Optional[dict[str, Any]]:
        """Fetch by name (str) or OID integer; returns the serialized
        object view (``{"type": ..., "fields": {...}}``) or None."""
        return self.call_op("fetch", target=target)["object"]

    def call(self, target: Any, method: str, *args: Any,
             idem: Optional[str] = None, **kwargs: Any) -> Any:
        """Invoke a monitored method on a stored object (fires events)."""
        return self.call_op("call", target=target, method=method,
                            args=list(args), kwargs=kwargs,
                            idem=idem)["result"]

    def delete(self, target: Any, idem: Optional[str] = None) -> None:
        self.call_op("delete", target=target, idem=idem)

    def query(self, text: str, **params: Any) -> list[Any]:
        return self.call_op("query", text=text, params=params)["rows"]

    def signal(self, name: str, **parameters: Any) -> None:
        self.call_op("signal", name=name, parameters=parameters)

    def rule(self, name: str) -> RemoteRuleBuilder:
        """Start a fluent rule definition (see :class:`RemoteRuleBuilder`)."""
        return RemoteRuleBuilder(self, name)

    def define_rules(self, ddl: str) -> list[str]:
        return self.call_op("define_rule", ddl=ddl)["rules"]

    def drop_rule(self, name: str) -> str:
        return self.call_op("drop_rule", name=name)["dropped"]

    def firing_log(self) -> dict[str, Any]:
        return self.call_op("firing_log")

    def statistics(self) -> dict[str, Any]:
        """The engine's full frozen-key statistics snapshot."""
        return self.call_op("stats")

    def server_statistics(self) -> dict[str, Any]:
        return self.call_op("server_stats")

    # ------------------------------------------------------------------
    # Retry and lifecycle
    # ------------------------------------------------------------------

    def retry(self, op: str, idem: str, **params: Any) -> Any:
        """Reconnect if needed and re-send ``op`` under the same
        idempotency key.  If the original attempt was applied, the
        server replays its cached ack (``self.last_replayed`` becomes
        True); otherwise the request is applied now.  Either way it is
        applied exactly once."""
        with self._lock:
            if self._sock is None:
                self._connect()
            return self._roundtrip(op, idem=idem, **params)

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def close(self) -> None:
        """Say goodbye and drop the socket.  Idempotent."""
        with self._lock:
            if self._sock is None:
                return
            try:
                self._roundtrip("close")
            except (ReachClientError, ConnectionClosedError,
                    ProtocolError, OSError):
                pass
            self._close_socket()

    def __enter__(self) -> "ReachClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "connected" if self.connected else "disconnected"
        return (f"<ReachClient {self.client_name} {state} "
                f"{self.host}:{self.port}>")
