"""``reproserve`` console entry point.

Boots a REACH database, serves it over the wire protocol, and drains
gracefully on SIGTERM/SIGINT::

    reproserve --port 7707 --data-dir /var/lib/reach \\
               --token s3cret=acme --token hunter2=globex \\
               --rate-limit 500 --admin-port 7708

Tokens map bearer credentials to tenants; with no ``--token`` the
server is open and every client lands in the ``default`` tenant.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.config import ExecutionConfig, ServerConfig


def _parse_tokens(pairs: list[str]) -> Optional[dict]:
    if not pairs:
        return None
    tokens = {}
    for pair in pairs:
        token, sep, tenant = pair.partition("=")
        if not sep or not token or not tenant:
            raise SystemExit(f"--token wants TOKEN=TENANT, got {pair!r}")
        tokens[token] = tenant
    return tokens


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reproserve",
        description="Serve a REACH active-OODBMS engine over the wire "
                    "protocol.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7707)
    parser.add_argument("--data-dir", default=None,
                        help="durable storage directory (default: "
                             "in-memory)")
    parser.add_argument("--token", action="append", default=[],
                        metavar="TOKEN=TENANT",
                        help="bearer token -> tenant mapping; repeatable. "
                             "No tokens = open server.")
    parser.add_argument("--rate-limit", type=float, default=None,
                        metavar="REQ_PER_S",
                        help="per-tenant token-bucket refill rate")
    parser.add_argument("--rate-burst", type=int, default=32)
    parser.add_argument("--drain-timeout", type=float, default=10.0)
    parser.add_argument("--admin-port", type=int, default=None,
                        help="also serve the loopback admin endpoint")
    parser.add_argument("--shards", type=int, default=None,
                        help="shard the engine over N OID-range kernels")
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    server_config = ServerConfig(
        host=args.host, port=args.port,
        auth_tokens=_parse_tokens(args.token),
        rate_limit=args.rate_limit, rate_burst=args.rate_burst,
        drain_timeout=args.drain_timeout)
    config_kwargs = {"server": server_config}
    if args.admin_port is not None:
        config_kwargs["admin_port"] = args.admin_port
    if args.shards is not None:
        from repro.config import ShardingConfig
        config_kwargs["sharding"] = ShardingConfig(shards=args.shards)
    config = ExecutionConfig(**config_kwargs)

    from repro.core.database import ReachDatabase
    from repro.server.server import ReachServer

    db = ReachDatabase(directory=args.data_dir, config=config)
    server = ReachServer(db.engine, server_config)
    try:
        server.start()
        server.install_signal_handlers()
        host, port = server.address
        print(f"reproserve listening on {host}:{port} "
              f"(tenants: {'open' if server_config.auth_tokens is None else len(server_config.auth_tokens)})",
              file=sys.stderr)
        server.stop_requested.wait()
        print("reproserve draining...", file=sys.stderr)
    finally:
        server.close()
        db.close()
    print("reproserve stopped.", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
