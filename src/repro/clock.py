"""Clock abstractions for temporal events.

The paper requires absolute, relative, periodic, and aperiodic temporal
events plus *milestones* for time-constrained processing (Section 3.1).
Testing and benchmarking those deterministically needs a controllable time
source, so all temporal machinery in the library consumes a :class:`Clock`
instead of calling :func:`time.monotonic` directly.

Two implementations are provided:

* :class:`SystemClock` — wall-clock time for real deployments.
* :class:`VirtualClock` — manually advanced time for tests, simulations and
  benchmarks.  Advancing the clock releases any timers that become due.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Callable


class Clock:
    """Abstract time source.

    Subclasses provide :meth:`now` and timer scheduling.  Timers invoke a
    zero-argument callback when their deadline is reached; cancellation is
    cooperative via the returned :class:`TimerHandle`.
    """

    def now(self) -> float:
        """Return the current time in seconds (monotonic)."""
        raise NotImplementedError

    def schedule(self, deadline: float, callback: Callable[[], None]) -> "TimerHandle":
        """Arrange for ``callback`` to run at ``deadline`` (absolute time)."""
        raise NotImplementedError

    def sleep(self, duration: float) -> None:
        """Block (or simulate blocking) for ``duration`` seconds."""
        raise NotImplementedError


class TimerHandle:
    """Cancellable handle for a scheduled timer."""

    __slots__ = ("deadline", "_callback", "_cancelled", "_seq")
    _counter = itertools.count()

    def __init__(self, deadline: float, callback: Callable[[], None]):
        self.deadline = deadline
        self._callback = callback
        self._cancelled = False
        self._seq = next(TimerHandle._counter)

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _fire(self) -> None:
        if not self._cancelled:
            self._cancelled = True
            self._callback()

    def __lt__(self, other: "TimerHandle") -> bool:
        return (self.deadline, self._seq) < (other.deadline, other._seq)


class VirtualClock(Clock):
    """A deterministic clock advanced explicitly by the test or simulation.

    ``advance(dt)`` moves time forward and fires every timer whose deadline
    falls inside the advanced window, in deadline order.  This makes temporal
    event tests exact: a periodic event with period 5 fires exactly twice
    when the clock advances by 10.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._timers: list[TimerHandle] = []
        self._lock = threading.RLock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def schedule(self, deadline: float, callback: Callable[[], None]) -> TimerHandle:
        handle = TimerHandle(deadline, callback)
        with self._lock:
            if deadline <= self._now:
                # Already due: fire immediately, matching SystemClock's
                # behaviour for past deadlines.
                pending_now = [handle]
            else:
                heapq.heappush(self._timers, handle)
                pending_now = []
        for h in pending_now:
            h._fire()
        return handle

    def sleep(self, duration: float) -> None:
        self.advance(duration)

    def advance(self, dt: float) -> None:
        """Advance the clock by ``dt`` seconds, firing due timers in order."""
        if dt < 0:
            raise ValueError("cannot advance a clock backwards")
        with self._lock:
            target = self._now + dt
        while True:
            with self._lock:
                if self._timers and self._timers[0].deadline <= target:
                    handle = heapq.heappop(self._timers)
                    # Time jumps to the timer's deadline so callbacks observe
                    # consistent 'now' values.
                    self._now = max(self._now, handle.deadline)
                else:
                    self._now = target
                    handle = None
            if handle is None:
                return
            handle._fire()

    def pending_timer_count(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled timers."""
        with self._lock:
            return sum(1 for t in self._timers if not t.cancelled)


class SystemClock(Clock):
    """Wall-clock time backed by :mod:`time` and :class:`threading.Timer`."""

    def __init__(self):
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin

    def schedule(self, deadline: float, callback: Callable[[], None]) -> TimerHandle:
        handle = TimerHandle(deadline, callback)
        delay = max(0.0, deadline - self.now())
        timer = threading.Timer(delay, handle._fire)
        timer.daemon = True
        timer.start()
        return handle

    def sleep(self, duration: float) -> None:
        time.sleep(max(0.0, duration))


def default_clock(virtual: bool = True, start: float = 0.0) -> Clock:
    """Build the library's default clock.

    Virtual by default: the reproduction favours determinism; real
    deployments opt into :class:`SystemClock` explicitly.
    """
    if virtual:
        return VirtualClock(start=start)
    return SystemClock()
