"""Exception hierarchy for the REACH active OODBMS reproduction.

Every error raised by the library derives from :class:`ReachError` so that
applications can catch library failures with a single ``except`` clause while
still being able to discriminate storage, transaction, event, and rule
failures individually.
"""

from __future__ import annotations


class ReachError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InjectedFault(ReachError):
    """An artificial failure raised by an armed fault point.

    Only ever raised when fault injection is enabled
    (``ExecutionConfig(fault_injection=True)``) and a point is armed via
    :meth:`repro.faults.FaultRegistry.arm`; production code paths never
    see it."""


class RecoveryWarning(ReachError, UserWarning):
    """Crash recovery discarded part of the write-ahead log (torn tail or
    mid-log corruption) and continued from the last consistent prefix.

    Both a :class:`ReachError` (single-except discrimination) and a
    :class:`UserWarning` (usable as a ``warnings`` category)."""


# ---------------------------------------------------------------------------
# Storage substrate
# ---------------------------------------------------------------------------

class StorageError(ReachError):
    """Base class for storage-manager failures."""


class SerializationError(StorageError):
    """A value could not be serialized or deserialized."""


class PageError(StorageError):
    """A slotted-page operation was invalid (bad slot, page full, ...)."""


class PageFullError(PageError):
    """The record does not fit in the page's free space."""


class RecordNotFoundError(StorageError):
    """No record exists for the requested OID or record id."""


class WALError(StorageError):
    """The write-ahead log is corrupt or was misused."""


class RecoveryError(StorageError):
    """Crash recovery could not be completed."""


# ---------------------------------------------------------------------------
# OODB substrate
# ---------------------------------------------------------------------------

class OODBError(ReachError):
    """Base class for object-database failures."""


class ObjectNotFoundError(OODBError):
    """Lookup by OID or by persistent name found nothing."""


class DuplicateNameError(OODBError):
    """A persistent name is already bound to another object."""


class NotPersistentError(OODBError):
    """The operation requires a persistent object but got a transient one."""


class TypeRegistrationError(OODBError):
    """A class was used with the data dictionary before being registered,
    or registered twice inconsistently."""


class QueryError(OODBError):
    """An OQL query failed to parse or evaluate."""


class IndexError_(OODBError):
    """An index operation failed (named with a trailing underscore to avoid
    shadowing the built-in :class:`IndexError`)."""


# ---------------------------------------------------------------------------
# Transactions and locking
# ---------------------------------------------------------------------------

class TransactionError(ReachError):
    """Base class for transaction failures."""


class TransactionStateError(TransactionError):
    """Operation invalid in the transaction's current state."""


class TransactionAborted(TransactionError):
    """Raised when an operation is attempted in (or forced into) an aborted
    transaction."""


class NestedTransactionError(TransactionError):
    """Invalid use of the nested-transaction protocol."""


class LockError(TransactionError):
    """Base class for lock-manager failures."""


class DeadlockError(LockError):
    """The lock manager detected a deadlock and chose this caller as the
    victim."""


class LockTimeoutError(LockError):
    """A lock could not be acquired within the configured timeout."""


class LicenseError(TransactionError):
    """Raised by the simulated *closed* commercial OODBMS when its license
    manager rejects an operation (paper, Section 4: spawning detached
    transactions 'caused problems with one OODBMS's license manager')."""


# ---------------------------------------------------------------------------
# Events, composition, rules
# ---------------------------------------------------------------------------

class EventError(ReachError):
    """Base class for event-system failures."""


class EventDefinitionError(EventError):
    """An event expression is malformed."""


class ComposerStateError(EventError):
    """A durable composer checkpoint could not be applied (version or
    spec-key mismatch, or a malformed payload).  Recovery treats this as
    a signal to fall back to the previous consistent checkpoint."""


class IllegalLifespanError(EventError):
    """A cross-transaction composite event lacks an explicit or implicit
    validity interval (paper, Section 3.3: such composites are illegal)."""


class RuleError(ReachError):
    """Base class for rule-system failures."""


class RuleDefinitionError(RuleError):
    """A rule definition is malformed."""


class RuleParseError(RuleDefinitionError):
    """The textual REACH rule DDL failed to parse."""


class UnsupportedCouplingError(RuleError):
    """The (event category, coupling mode) combination is not supported by
    REACH (paper, Table 1)."""


class TransientParameterError(RuleError):
    """A reference to a transient object was passed to a detached rule
    (paper, Section 3.2: only persistent references or values may cross a
    detached boundary)."""


class RuleExecutionError(RuleError):
    """A rule's condition or action raised an unexpected exception."""


# ---------------------------------------------------------------------------
# Layered baseline
# ---------------------------------------------------------------------------

class LayeredArchitectureError(ReachError):
    """Base class for the layered-baseline limitations.

    These errors reproduce the *negative results* of the paper's Section 4:
    capabilities that a layered active DBMS on a closed commercial OODBMS
    cannot provide surface as exceptions of this family.
    """


class ClosedSystemError(LayeredArchitectureError):
    """The closed OODBMS does not expose the requested internal capability
    (transaction-manager access, commit/abort redefinition, method hooks)."""


# ---------------------------------------------------------------------------
# Network front end (repro.server)
# ---------------------------------------------------------------------------

class ServerError(ReachError):
    """Base class for network front-end failures."""


class ProtocolError(ServerError):
    """A wire frame violated the length-prefixed JSON protocol (bad
    length prefix, oversized frame, undecodable payload)."""


class FrameTooLargeError(ProtocolError):
    """A frame's declared length exceeds the configured bound."""


class ConnectionClosedError(ServerError):
    """The peer closed the connection before a complete frame arrived."""


class ReachClientError(ServerError):
    """A request failed server-side; ``code`` carries the structured
    error code from the response (``auth``, ``rate_limited``,
    ``bad_request``, ``app_error``, ...)."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class AuthenticationError(ReachClientError):
    """The server rejected the connection's bearer token."""

    def __init__(self, message: str = "invalid or missing token"):
        super().__init__("auth", message)


class RateLimitedError(ReachClientError):
    """The tenant's token bucket is exhausted; retry after backoff."""

    def __init__(self, message: str = "rate limit exceeded"):
        super().__init__("rate_limited", message)
