"""Pipeline tracing: span trees across detection, composition and firing.

A *trace* follows one detected event through the whole active pipeline:
the sentry detection span is the root, and everything the occurrence
causes — ECA-manager handling, composer feeds, rule firings in all six
coupling modes, and the commits/aborts of the transactions those firings
run in — attaches underneath it, even when composition or detached
execution hops to a worker thread.

Two parenting mechanisms cooperate:

* a **thread-local span stack**: a span opened while another span is
  active on the same thread becomes its child (this covers the
  synchronous go-ahead path: detect -> ECA -> immediate firing ->
  subtransaction commit);
* an **explicit trace context carried on the occurrence**: every
  :class:`~repro.core.events.EventOccurrence` records the trace id and
  span id that produced it, so a composer worker or detached-rule thread
  can attach its spans to the originating trace with no shared stack
  (this covers deferred drains at EOT and both detached variants).

A third mechanism crosses *process* boundaries: a :class:`TraceContext`
(trace id, parent span id, sampling decision) minted by a wire client
travels in the reserved ``trace`` field of the request frame and is
adopted by the server as the explicit context of the request span, so
the whole server-side cascade — detection, cross-shard composition,
detached execution, WAL commit wait — lands in the client's trace.

Trace ids and span ids are drawn from process-global counters, so the
per-shard tracers of a :class:`~repro.core.sharding.ShardedEngine` never
collide and :func:`merge_traces` can assemble one tree from several
tracers' retentions.  Clients mint ids via :func:`mint_trace_id` from a
randomized high base so they cannot collide with server-born ids.

Like the metrics registry, a disabled tracer costs one method call
returning a shared null context manager — no allocation, no clock read.
A ``sample_rate`` below 1.0 gates *root* creation: an unsampled request
starts no trace, and because every downstream span attaches only to an
existing parent (stack or occurrence context), the entire cascade stays
span-free — the near-zero "unsampled" path the CI budget asserts.
"""

from __future__ import annotations

import itertools
import os
import threading
from time import perf_counter
from typing import Any, Iterable, Iterator, Optional

# Process-global id streams shared by every tracer: uniqueness across
# the shards of one engine (and across engines in one test process) is
# what lets merge_traces() stitch shard-local retentions into one tree.
_TRACE_IDS = itertools.count(1)
_SPAN_IDS = itertools.count(1)

# Client-minted ids start from a random 48-bit base per process: a
# ReachClient in another process must not collide with server-born ids
# (small integers) or with another client's stream.
_MINT_IDS = itertools.count(
    (int.from_bytes(os.urandom(6), "big") | (1 << 47)) << 16)


def mint_trace_id() -> int:
    """A process-unique, cross-process-collision-safe trace id."""
    return next(_MINT_IDS)


class TraceContext:
    """Propagated trace context: what crosses the wire.

    ``span_id`` is the parent span the receiver should attach under
    (None when the sender has no open span — the adopted span becomes
    the trace root).  ``sampled=False`` asks the receiver not to record
    (senders normally just omit the context instead).
    """

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: int, span_id: Optional[int] = None,
                 sampled: bool = True):
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    def to_wire(self) -> dict[str, Any]:
        """The reserved ``trace`` frame field (see repro.server.protocol)."""
        wire: dict[str, Any] = {"id": self.trace_id}
        if self.span_id is not None:
            wire["span"] = self.span_id
        if not self.sampled:
            wire["sampled"] = False
        return wire

    @classmethod
    def from_wire(cls, value: Any) -> Optional["TraceContext"]:
        """Decode a frame field; None for anything malformed.

        Tolerant by design: frames from older clients carry no context,
        and a garbage field must never fail the request it rides on.
        """
        if not isinstance(value, dict):
            return None
        trace_id = value.get("id")
        if not isinstance(trace_id, int) or isinstance(trace_id, bool) \
                or trace_id <= 0:
            return None
        span_id = value.get("span")
        if not isinstance(span_id, int) or isinstance(span_id, bool) \
                or span_id <= 0:
            span_id = None
        sampled = value.get("sampled", True)
        if not isinstance(sampled, bool):
            sampled = True
        return cls(trace_id, span_id, sampled)

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, TraceContext)
                and self.trace_id == other.trace_id
                and self.span_id == other.span_id
                and self.sampled == other.sampled)

    def __repr__(self) -> str:
        return (f"<TraceContext trace={self.trace_id} "
                f"span={self.span_id} sampled={self.sampled}>")


class Span:
    """One timed phase of the pipeline.

    ``kind`` classifies the phase (``sentry``, ``eca``, ``composer``,
    ``scheduler``, ``tx``); ``name`` identifies the concrete operation
    (``detect:after River.update_water_level()``, ``fire:WaterLevel``).

    A plain ``__slots__`` class rather than a dataclass, and its own
    context manager (``with tracer.span(...) as span`` enters the span
    itself): several spans are created per detected event, so both
    construction cost and per-span allocations are part of the
    enabled-tracing overhead budget.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "kind",
                 "start", "end", "attributes", "_stack", "_sink")

    def __init__(self, trace_id: int, span_id: int,
                 parent_id: Optional[int], name: str, kind: str,
                 start: float, end: float = 0.0,
                 attributes: Optional[dict[str, Any]] = None,
                 stack: Optional[list["Span"]] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start = start
        self.end = end
        self.attributes = {} if attributes is None else attributes
        #: the creating thread's span stack (span creation and the
        #: ``with`` block always run on the same thread).
        self._stack = stack
        #: export hook invoked with the finished span (set by the tracer
        #: when a telemetry pipeline is attached; None otherwise).
        self._sink = None

    def __enter__(self) -> "Span":
        self._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb, _pc=perf_counter) -> None:
        self.end = _pc()
        stack = self._stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:
            stack.remove(self)
        if exc is not None:
            self.attributes.setdefault("error", repr(exc))
        sink = self._sink
        if sink is not None:
            sink(self)

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return self.end - self.start if self.end else 0.0

    @property
    def finished(self) -> bool:
        return self.end != 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return (f"<Span {self.name!r} kind={self.kind} "
                f"trace={self.trace_id} id={self.span_id} "
                f"parent={self.parent_id} {self.duration * 1e6:.1f}us>")


class Trace:
    """The assembled span tree of one trace id."""

    def __init__(self, trace_id: int, spans: list[Span]):
        self.trace_id = trace_id
        #: spans in creation order (parents precede their children).
        self.spans = list(spans)

    @property
    def root(self) -> Optional[Span]:
        for span in self.spans:
            if span.parent_id is None:
                return span
        return self.spans[0] if self.spans else None

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, kind: Optional[str] = None,
             name: Optional[str] = None) -> list[Span]:
        """Spans matching ``kind`` and/or a ``name`` prefix."""
        out = []
        for span in self.spans:
            if kind is not None and span.kind != kind:
                continue
            if name is not None and not span.name.startswith(name):
                continue
            out.append(span)
        return out

    def path_to_root(self, span: Span) -> list[Span]:
        """``span`` and its ancestors, leaf first, root last."""
        by_id = {s.span_id: s for s in self.spans}
        path = [span]
        while path[-1].parent_id is not None:
            parent = by_id.get(path[-1].parent_id)
            if parent is None:
                break
            path.append(parent)
        return path

    def walk(self) -> Iterator[tuple[int, Span]]:
        """Depth-first (depth, span) pairs from the root down."""
        def descend(span: Span, depth: int) -> Iterator[tuple[int, Span]]:
            yield depth, span
            for child in self.children_of(span):
                yield from descend(child, depth + 1)

        root = self.root
        if root is not None:
            yield from descend(root, 0)

    def format(self) -> str:
        """Indented text dump of the span tree (the docs' sample trace)."""
        lines = [f"trace {self.trace_id} ({len(self.spans)} spans)"]
        for depth, span in self.walk():
            attrs = " ".join(f"{k}={v}" for k, v in span.attributes.items())
            lines.append(f"{'  ' * (depth + 1)}[{span.kind}] {span.name} "
                         f"{span.duration * 1e6:.1f}us"
                         + (f" {attrs}" if attrs else ""))
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {"trace_id": self.trace_id,
                "spans": [span.to_dict() for span in self.spans]}

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return f"<Trace {self.trace_id} spans={len(self.spans)}>"


class _NullSpanContext:
    """Shared no-op context manager returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class Tracer:
    """Creates spans and retains the most recent traces for querying.

    ``capacity`` bounds retention: once exceeded, whole traces are
    evicted oldest-first, so memory use is stable under sustained load.
    """

    def __init__(self, enabled: bool = True, capacity: int = 256,
                 sample_rate: float = 1.0):
        self.enabled = enabled
        self.capacity = capacity
        #: fraction of would-be trace roots actually recorded (see
        #: ``ExecutionConfig(trace_sampling=...)``).  Gates only *root*
        #: creation: spans with an explicit context or an active parent
        #: always attach, so an adopted wire context is never dropped
        #: mid-trace.
        self.sample_rate = sample_rate
        self._sample_acc = 0.0
        # Bound methods of the process-global id counters: span creation
        # is the hot path, and ``next(x)`` costs a global lookup per span.
        self._next_trace_id = _TRACE_IDS.__next__
        self._next_span_id = _SPAN_IDS.__next__
        # Insertion-ordered (plain dicts are, since 3.7) so eviction can
        # drop the oldest trace; a plain dict keeps get/insert cheap.
        self._traces: dict[int, list[Span]] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        #: traces ever recorded by this tracer (drop accounting:
        #: ``evicted + len(tracer)`` equals ``born``).
        self.born = 0
        #: whole traces dropped by capacity eviction.
        self.evicted = 0
        #: per-finished-span export hook (see :meth:`set_sink`).
        self._sink = None

    def set_sink(self, sink) -> None:
        """Attach (or detach, with ``None``) the telemetry export hook.

        The sink is called with every span that finishes *after* this
        call — spans already open keep the sink they were created with.
        Only the telemetry pipeline should call this.
        """
        self._sink = sink

    # -- span creation --------------------------------------------------------

    def span(self, name: str, kind: str,
             trace_id: Optional[int] = None,
             parent_id: Optional[int] = None,
             **attributes: Any):
        """Open a span: ``with tracer.span("fire:R", "scheduler") as s:``.

        Parent resolution order: explicit ``trace_id``/``parent_id`` (the
        occurrence-carried context), else the calling thread's current
        span, else a brand-new trace rooted at this span.  Returns the
        shared null context when tracing is disabled, in which case the
        ``as`` target is ``None``.
        """
        if not self.enabled:
            return _NULL_SPAN
        stack = self._stack()
        if trace_id is None:
            if stack:
                current = stack[-1]
                trace_id = current.trace_id
                parent_id = current.span_id
            else:
                # A brand-new root: the only place sampling applies.
                # The accumulator is racy under threads — statistics,
                # not ledgers, like the rest of the obs substrate.
                if self.sample_rate < 1.0:
                    acc = self._sample_acc + self.sample_rate
                    if acc < 1.0:
                        self._sample_acc = acc
                        return _NULL_SPAN
                    self._sample_acc = acc - 1.0
                trace_id = self._next_trace_id()
        # Construct without __init__ — spans are the hot-path allocation
        # (several per detected event) and the extra frame shows up in
        # the enabled-overhead budget.
        span = Span.__new__(Span)
        span.trace_id = trace_id
        span.span_id = self._next_span_id()
        span.parent_id = parent_id
        span.name = name
        span.kind = kind
        span.start = perf_counter()
        span.end = 0.0
        span.attributes = attributes
        span._stack = stack
        span._sink = self._sink
        # Appending to an existing trace's span list is safe without the
        # lock under the GIL; only trace creation/eviction takes it.
        spans = self._traces.get(trace_id)
        if spans is not None:
            spans.append(span)
        else:
            self._record_new(span)
        return span

    def child_span(self, name: str, kind: str, **attributes: Any):
        """A span only if a parent is already active on this thread.

        Used by layers that should never *start* a trace on their own
        (e.g. transaction commit): when nothing upstream is being traced,
        this is a no-op.
        """
        if not self.enabled:
            return _NULL_SPAN
        stack = self._stack()
        if not stack:
            return _NULL_SPAN
        current = stack[-1]
        span = Span.__new__(Span)
        span.trace_id = current.trace_id
        span.span_id = self._next_span_id()
        span.parent_id = current.span_id
        span.name = name
        span.kind = kind
        span.start = perf_counter()
        span.end = 0.0
        span.attributes = attributes
        span._stack = stack
        span._sink = self._sink
        spans = self._traces.get(current.trace_id)
        if spans is not None:
            spans.append(span)
        else:
            self._record_new(span)
        return span

    # -- thread-local current-span stack --------------------------------------

    def _stack(self) -> list[Span]:
        try:
            return self._local.stack
        except AttributeError:
            stack = self._local.stack = []
            return stack

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def active(self) -> bool:
        """Would a context-free span opened now on this thread record?

        False exactly when :meth:`span` called without an explicit
        ``trace_id`` is guaranteed to return the null context: roots are
        fully suppressed (``sample_rate == 0.0``) and no parent span is
        open on this thread.  Hot call sites check this before packing
        span attributes, so the unsampled path skips the attribute dict
        and the span-machinery call entirely — the bulk of the "near
        zero when unsampled" budget.  With any positive sample rate it
        returns True and the accumulator in :meth:`span` decides.
        """
        if not self.enabled:
            return False
        if self.sample_rate > 0.0:
            return True
        try:
            stack = self._local.stack
        except AttributeError:
            return False
        return bool(stack)

    # -- retention and querying ------------------------------------------------

    def _record_new(self, span: Span) -> None:
        # Insertion is GIL-atomic; the lock is only needed for eviction,
        # which runs in batches (once the table holds twice the retention
        # target) so sustained detection pays an amortized O(1) cost.
        # Readers trim down to ``capacity`` exactly (see _evict_to).
        traces = self._traces
        spans = traces.get(span.trace_id)
        if spans is None:
            traces[span.trace_id] = [span]
            self.born += 1
        else:
            spans.append(span)
        if len(traces) >= self.capacity * 2:
            self._evict_to(self.capacity)

    def _evict_to(self, keep: int) -> None:
        with self._lock:
            traces = self._traces
            try:
                while len(traces) > keep:
                    del traces[next(iter(traces))]
                    self.evicted += 1
            except (KeyError, StopIteration, RuntimeError):
                pass  # concurrent insert/evict race: statistics, not ledgers

    def trace(self, trace_id: Optional[int] = None) -> Optional[Trace]:
        """The trace with ``trace_id``, or the most recent one."""
        self._evict_to(self.capacity)
        with self._lock:
            if trace_id is None:
                if not self._traces:
                    return None
                trace_id = next(reversed(self._traces))
            spans = self._traces.get(trace_id)
            if spans is None:
                return None
            return Trace(trace_id, list(spans))

    def traces(self) -> list[Trace]:
        """Every retained trace (at most ``capacity``), oldest first."""
        self._evict_to(self.capacity)
        with self._lock:
            return [Trace(tid, list(spans))
                    for tid, spans in self._traces.items()]

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        self._evict_to(self.capacity)
        with self._lock:
            return len(self._traces)


def merge_traces(parts: Iterable[Optional[Trace]]) -> Optional[Trace]:
    """Assemble one trace from several tracers' retentions.

    A sharded engine records one trace id across many tracers (the
    coordinator's request span in shard 0, the detection on the home
    shard, cross-shard composition on another).  Spans are merged in
    start order so parents precede children — span starts come from one
    process-wide ``perf_counter`` clock, and a child cannot start before
    its parent opened.  Returns None when no part holds any spans.
    """
    spans: list[Span] = []
    trace_id = None
    for part in parts:
        if part is None or not part.spans:
            continue
        if trace_id is None:
            trace_id = part.trace_id
        spans.extend(part.spans)
    if trace_id is None:
        return None
    seen: set[int] = set()
    unique = []
    for span in sorted(spans, key=lambda s: s.start):
        if span.span_id in seen:
            continue
        seen.add(span.span_id)
        unique.append(span)
    return Trace(trace_id, unique)


#: Tracer used by components not wired to a database (always disabled).
NULL_TRACER = Tracer(enabled=False)
