"""Live introspection: a stdlib-only HTTP admin endpoint.

An operator of a 16-session deployment needs to ask a *running* engine
"which rules are slow, who holds locks, how deep is the WAL?" without a
Python prompt inside the process.  :class:`AdminServer` binds a
``ThreadingHTTPServer`` on loopback (``ExecutionConfig(admin_port=...)``;
port 0 picks an ephemeral port, exposed via ``engine.admin_address``)
and serves JSON — plus Prometheus text on ``/metrics`` — assembled from
the engine's existing introspection surfaces:

========================  ==================================================
``/stats``                ``engine.statistics()`` (the frozen-key snapshot)
``/metrics``              Prometheus text exposition of the metric registry
``/traces``               retained span trees (``?limit=N`` for the tail)
``/trace/<id>``           one assembled trace (merged across shard tracers)
``/slow-rules``           per-rule firing latency aggregated from traces
``/locks``                lock table + ``concurrency_stats()`` (stripe waits)
``/wal``                  WAL depth: LSNs, buffered records, group commit
``/composer``             half-matched composites + checkpoint/restore LSNs
``/shards``               shard topology: per-shard counters, replication
``/flight``               flight-recorder state (``?tail=N`` recent entries)
``/flight/dump``          trigger a dump; returns the file path
========================  ==================================================

This module sits in the ``obs`` layer and therefore must not import
``core``/``oodb``/``storage`` (see ``scripts/check_layering.py``); the
engine is duck-typed.  ``scripts/reproctl.py`` is the matching CLI.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional
from urllib.parse import parse_qs, urlparse

from repro.obs.export import render_prometheus


def slow_rules(engine: Any, limit: int = 20) -> list[dict[str, Any]]:
    """Per-rule firing-latency aggregate from the retained traces.

    Scheduler spans are named ``fire:<rule>``; with tracing disabled the
    aggregate is empty but registered rules are still listed (with their
    quarantine state) so the endpoint stays useful.
    """
    aggregate: dict[str, dict[str, Any]] = {}
    for trace in engine.tracer.traces():
        for span in trace.spans:
            if span.kind != "scheduler" or not span.finished \
                    or not span.name.startswith("fire:"):
                continue
            entry = aggregate.setdefault(span.name[5:], {
                "firings": 0, "total_s": 0.0, "max_s": 0.0})
            entry["firings"] += 1
            entry["total_s"] += span.duration
            if span.duration > entry["max_s"]:
                entry["max_s"] = span.duration
    rows = []
    names = set(aggregate)
    names.update(rule.name for rule in engine.rules())
    for name in names:
        entry = aggregate.get(name, {"firings": 0, "total_s": 0.0,
                                     "max_s": 0.0})
        firings = entry["firings"]
        row = {
            "rule": name,
            "firings": firings,
            "mean_s": entry["total_s"] / firings if firings else 0.0,
            "max_s": entry["max_s"],
            "total_s": entry["total_s"],
        }
        try:
            rule = engine.get_rule(name)
            row["quarantined"] = bool(rule.quarantined)
            row["enabled"] = bool(rule.enabled)
        except KeyError:
            row["quarantined"] = False
            row["enabled"] = None
        rows.append(row)
    rows.sort(key=lambda r: (r["mean_s"], r["total_s"]), reverse=True)
    return rows[:limit]


class _EndpointError(Exception):
    """An endpoint-specific HTTP error (status + JSON payload)."""

    def __init__(self, status: int, payload: dict[str, Any]):
        super().__init__(payload.get("error", ""))
        self.status = status
        self.payload = payload


class AdminServer:
    """Loopback HTTP server over one engine; one daemon thread per request
    (``ThreadingHTTPServer``), started at construction, stopped by
    :meth:`close` (the engine calls it during shutdown)."""

    def __init__(self, engine: Any, port: int = 0, host: str = "127.0.0.1"):
        self.engine = engine
        self._httpd = ThreadingHTTPServer((host, port), self._make_handler())
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="reach-admin", daemon=True)
        self._thread.start()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    # -- request handling ----------------------------------------------------

    def _make_handler(self):
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, *args: Any) -> None:
                pass  # admin traffic must not spam the process's stderr

            def do_GET(self) -> None:
                server._handle(self)

            def do_POST(self) -> None:
                server._handle(self)

        return _Handler

    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        parsed = urlparse(request.path)
        query = {key: values[-1]
                 for key, values in parse_qs(parsed.query).items()}
        try:
            result = self._dispatch(parsed.path, query)
        except _EndpointError as exc:
            self._respond(request, exc.status, "application/json",
                          json.dumps(exc.payload))
            return
        except KeyError:
            self._respond(request, 404, "application/json",
                          json.dumps({"error": f"no such endpoint: "
                                               f"{parsed.path}",
                                      "endpoints": sorted(_ROUTES)}))
            return
        except Exception as exc:  # engine closed mid-request, bad query, ...
            self._respond(request, 500, "application/json",
                          json.dumps({"error": repr(exc)}))
            return
        content_type, body = result
        self._respond(request, 200, content_type, body)

    @staticmethod
    def _respond(request: BaseHTTPRequestHandler, status: int,
                 content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        request.send_response(status)
        request.send_header("Content-Type",
                            f"{content_type}; charset=utf-8")
        request.send_header("Content-Length", str(len(payload)))
        request.end_headers()
        request.wfile.write(payload)

    def _dispatch(self, path: str, query: dict[str, str]) \
            -> tuple[str, str]:
        normalized = path.rstrip("/") or "/"
        if normalized.startswith("/trace/"):
            return self._trace(normalized[len("/trace/"):], query)
        handler = _ROUTES[normalized]
        return handler(self, query)

    # -- endpoints -----------------------------------------------------------

    def _json(self, payload: Any) -> tuple[str, str]:
        return ("application/json",
                json.dumps(payload, indent=2, default=repr))

    def _index(self, query: dict[str, str]) -> tuple[str, str]:
        return self._json(
            {"endpoints": sorted(_ROUTES) + ["/trace/<id>"]})

    def _stats(self, query: dict[str, str]) -> tuple[str, str]:
        return self._json(self.engine.statistics())

    def _metrics(self, query: dict[str, str]) -> tuple[str, str]:
        text = render_prometheus(self.engine.metrics_registry.snapshot())
        return ("text/plain; version=0.0.4", text)

    def _traces(self, query: dict[str, str]) -> tuple[str, str]:
        traces = self.engine.tracer.traces()
        limit = int(query.get("limit", 0))
        if limit > 0:
            traces = traces[-limit:]
        return self._json({"count": len(traces),
                           "traces": [trace.to_dict() for trace in traces]})

    def _trace(self, raw_id: str, query: dict[str, str]) -> tuple[str, str]:
        # One assembled cross-component trace tree.  ``engine.trace`` on
        # a sharded topology merges every shard's tracer retention, so a
        # trace spanning wire request, detection, cross-shard composition
        # and detached execution comes back as one tree.
        try:
            trace_id = int(raw_id)
        except ValueError:
            raise _EndpointError(400, {
                "error": f"trace id must be an integer, got {raw_id!r}"})
        trace = self.engine.trace(trace_id)
        if trace is None:
            raise _EndpointError(404, {
                "error": f"no such trace: {trace_id}",
                "hint": "traces are retained up to the tracer capacity; "
                        "see /traces for what is currently held"})
        return self._json(trace.to_dict())

    def _slow_rules(self, query: dict[str, str]) -> tuple[str, str]:
        limit = int(query.get("limit", 20))
        return self._json({"rules": slow_rules(self.engine, limit=limit)})

    def _locks(self, query: dict[str, str]) -> tuple[str, str]:
        # The live lock-table view plus the curated concurrency surface
        # (stripe wait percentiles, WAL, history merge lag).  The legacy
        # top-level keys (resources/deadlocks_detected/timeouts) are part
        # of the endpoint's contract and stay.
        payload = self.engine.locks.snapshot()
        payload["concurrency"] = self.engine.concurrency_stats()
        return self._json(payload)

    def _wal(self, query: dict[str, str]) -> tuple[str, str]:
        return self._json(self.engine.storage.wal_stats())

    def _composer(self, query: dict[str, str]) -> tuple[str, str]:
        # Durable composite-event detection: per-composer half-matched
        # group counts, pending semi-composed occurrences, checkpoint /
        # restore / fallback counters, and the last durable checkpoint
        # LSN — "how much detection state would a crash lose right now?"
        return self._json(self.engine.composer_stats())

    def _shards(self, query: dict[str, str]) -> tuple[str, str]:
        # Topology view: shard count, OID block size, per-shard hot
        # counters, replication state.  Duck-typed like everything else —
        # a single-kernel engine reports itself as a one-shard topology.
        return self._json(self.engine.shard_stats())

    def _server(self, query: dict[str, str]) -> tuple[str, str]:
        # The network front end, when one is attached: listen address,
        # connection/request counters, per-tenant rate-limit state.  An
        # engine without a server answers the inert stub, not a 404 —
        # pollers can rely on the shape.
        return self._json(self.engine.server_stats())

    def _flight(self, query: dict[str, str]) -> tuple[str, str]:
        flight = self.engine.flight
        payload = flight.snapshot()
        tail = int(query.get("tail", 0))
        if tail > 0:
            payload["entries"] = flight.entries()[-tail:]
        return self._json(payload)

    def _flight_dump(self, query: dict[str, str]) -> tuple[str, str]:
        path = self.engine.flight.dump(reason=query.get("reason", "admin"))
        return self._json({"path": path})


_ROUTES = {
    "/": AdminServer._index,
    "/stats": AdminServer._stats,
    "/metrics": AdminServer._metrics,
    "/traces": AdminServer._traces,
    "/slow-rules": AdminServer._slow_rules,
    "/locks": AdminServer._locks,
    "/wal": AdminServer._wal,
    "/composer": AdminServer._composer,
    "/shards": AdminServer._shards,
    "/server": AdminServer._server,
    "/flight": AdminServer._flight,
    "/flight/dump": AdminServer._flight_dump,
}
