"""Flight recorder: an always-on, fixed-cost ring of recent happenings.

Traces and metrics answer "how is the pipeline behaving" while the
process is alive; the flight recorder answers "what happened just
before it died".  It is a bounded ring buffer of small structured
records — detections, rule firings, lock waits over a threshold, WAL
forces and group-commit batches, fault-point activations, quarantine
and dead-letter transitions — that every subsystem appends to at a cost
low enough to leave on in production (one deque append; the ring evicts
oldest-first by construction).

Unlike the tracer, the recorder is **on by default**
(``ExecutionConfig(flight_recorder=False)`` swaps in the shared
:data:`NULL_FLIGHT`) and is independent of ``config.observability``: the
post-mortem record must exist precisely when nobody was watching.

The ring is dumped to ``<dbdir>/flight/`` as JSONL — a header line
followed by one record per line — on a simulated crash
(``StorageManager.crash``), on an exception escaping the engine's
``with`` block, or on demand via ``db.flight_recorder().dump()``.  The
crash-torture harness re-reads the dump after recovery and checks its
last WAL record against the recovered log's cut point
(:mod:`repro.bench.crash_torture`).
"""

from __future__ import annotations

import itertools
import json
import os
import re
import threading
import time
from collections import deque
from typing import Any, Optional

#: bumped when the dump header/record layout changes incompatibly.
DUMP_FORMAT = "reach-flight-v1"


class FlightRecorder:
    """Bounded ring of ``(seq, wall_ts, category, fields)`` records.

    ``record`` is the hot path: one seq increment, one clock read, one
    ``deque.append`` (which evicts the oldest entry once ``capacity`` is
    reached — fixed memory, no explicit trimming).  Thread safety leans
    on the GIL the same way the metrics registry does: appends are
    atomic, readers copy, and the drop count is derived (``recorded`` -
    retained) rather than kept as a mutable ledger.
    """

    enabled = True

    def __init__(self, capacity: int = 4096,
                 directory: Optional[str] = None):
        self.capacity = capacity
        #: default dump target (the database directory); ``dump`` writes
        #: into ``<directory>/flight/``.
        self.directory = directory
        self._ring: deque = deque(maxlen=capacity)
        self._seq = itertools.count(1)
        self._next_seq = self._seq.__next__
        self._last_seq = 0
        self._dump_lock = threading.Lock()
        self._dump_count = 0

    # -- recording (hot path) ------------------------------------------------

    def record(self, category: str, **fields: Any) -> None:
        """Append one happening; never blocks, never raises on overflow."""
        seq = self._next_seq()
        self._ring.append((seq, time.time(), category, fields))
        self._last_seq = seq

    # -- introspection -------------------------------------------------------

    @property
    def recorded(self) -> int:
        """Total records ever appended (retained + overwritten)."""
        return self._last_seq

    @property
    def dropped(self) -> int:
        """Records overwritten by ring wrap-around."""
        return max(0, self._last_seq - len(self._ring))

    def entries(self, category: Optional[str] = None) -> list[dict[str, Any]]:
        """Retained records oldest-first, as dicts (optionally filtered)."""
        out = []
        for seq, ts, cat, fields in list(self._ring):
            if category is not None and cat != category:
                continue
            out.append({"seq": seq, "ts": ts, "category": cat, **fields})
        return out

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable state for ``db.statistics()["flight"]``."""
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "retained": len(self._ring),
            "dropped": self.dropped,
            "dumps": self._dump_count,
        }

    def clear(self) -> None:
        self._ring.clear()

    # -- dumping -------------------------------------------------------------

    def dump(self, reason: str = "on-demand",
             directory: Optional[str] = None) -> Optional[str]:
        """Write the retained ring to ``<dir>/flight/`` as JSONL.

        The file is fsynced before returning so a dump taken at (simulated)
        crash time survives the crash.  Returns the path, or ``None`` when
        no target directory is known.
        """
        target = directory or self.directory
        if target is None:
            return None
        entries = list(self._ring)
        with self._dump_lock:
            self._dump_count += 1
            number = self._dump_count
        flight_dir = os.path.join(target, "flight")
        os.makedirs(flight_dir, exist_ok=True)
        safe_reason = re.sub(r"[^A-Za-z0-9_.-]+", "-", reason) or "dump"
        path = os.path.join(flight_dir,
                            f"flight-{number:03d}-{safe_reason}.jsonl")
        header = {
            "format": DUMP_FORMAT,
            "reason": reason,
            "wall_ts": time.time(),
            "capacity": self.capacity,
            "recorded": self.recorded,
            "retained": len(entries),
            "dropped": max(0, self.recorded - len(entries)),
        }
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header, default=repr) + "\n")
            for seq, ts, category, fields in entries:
                record = {"seq": seq, "ts": ts, "category": category}
                record.update(fields)
                fh.write(json.dumps(record, default=repr) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return path

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return (f"<FlightRecorder capacity={self.capacity} "
                f"retained={len(self._ring)} recorded={self.recorded}>")


def load_dump(path: str) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Parse a dump file back into ``(header, records)``.

    Used by the crash-torture harness to validate the post-crash record
    against the recovered WAL, and handy for ad-hoc post-mortems.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"empty flight dump: {path}")
    header = json.loads(lines[0])
    if header.get("format") != DUMP_FORMAT:
        raise ValueError(f"not a flight dump (format={header.get('format')!r}): "
                         f"{path}")
    return header, [json.loads(line) for line in lines[1:]]


def latest_dump(directory: str) -> Optional[str]:
    """Path of the newest dump under ``<directory>/flight/``, if any."""
    flight_dir = os.path.join(directory, "flight")
    if not os.path.isdir(flight_dir):
        return None
    names = sorted(name for name in os.listdir(flight_dir)
                   if name.startswith("flight-") and name.endswith(".jsonl"))
    return os.path.join(flight_dir, names[-1]) if names else None


class _NullFlightRecorder(FlightRecorder):
    """Shared no-op recorder for ``flight_recorder=False`` engines and
    components not wired to an engine; mirrors ``NULL_METRICS``."""

    enabled = False

    def __init__(self):
        super().__init__(capacity=0, directory=None)

    def record(self, category: str, **fields: Any) -> None:
        pass

    def dump(self, reason: str = "on-demand",
             directory: Optional[str] = None) -> Optional[str]:
        return None


NULL_FLIGHT = _NullFlightRecorder()
