"""Observability for the active pipeline: tracing and metrics.

This package is the measurement substrate the ROADMAP's performance work
builds on.  It follows the event pipeline end to end — sentry detection,
ECA-manager handling, event composition, rule scheduling in all six
coupling modes, and transaction commit/abort — and exposes the result
through two handles on the database facade:

* ``db.trace()`` — span trees (:class:`Trace`/:class:`Span`) answering
  "which primitive events contributed to this composite, which rules
  fired, in which transaction, and how long each phase took";
* ``db.metrics()`` — the :class:`MetricsRegistry` with counters, gauges
  and latency histograms for every pipeline stage.

Both are disabled by default (``ExecutionConfig(observability=True)``
turns them on) and cost one no-op call per instrumentation point when
off.  See ``docs/observability.md`` for the span model and metric names.
"""

from repro.obs.admin import AdminServer, slow_rules
from repro.obs.export import (
    CallbackExporter,
    InMemoryExporter,
    JsonlFileExporter,
    TelemetryExporter,
    TelemetryPipeline,
    render_prometheus,
)
from repro.obs.flight import (
    NULL_FLIGHT,
    FlightRecorder,
    latest_dump,
    load_dump,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_METRICS,
    NullCounter,
    NullGauge,
    NullHistogram,
)
from repro.obs.tracer import (
    NULL_TRACER,
    Span,
    Trace,
    TraceContext,
    Tracer,
    merge_traces,
    mint_trace_id,
)

__all__ = [
    "AdminServer",
    "CallbackExporter",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "InMemoryExporter",
    "JsonlFileExporter",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_FLIGHT",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "Span",
    "TelemetryExporter",
    "TelemetryPipeline",
    "Trace",
    "TraceContext",
    "Tracer",
    "latest_dump",
    "load_dump",
    "merge_traces",
    "mint_trace_id",
    "render_prometheus",
    "slow_rules",
]
