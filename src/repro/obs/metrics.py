"""Counters, gauges and latency histograms for the event pipeline.

The paper's engineering argument — integration makes active behaviour
*cheap enough to measure* — needs a measurement substrate that does not
perturb what it measures.  Two properties drive this module's design:

* **near-zero cost when disabled**: a disabled :class:`MetricsRegistry`
  hands out process-wide *null instruments* whose mutating methods are
  no-ops; instrumentation points hold direct references to their
  instruments, so the disabled hot path is one no-op method call with no
  dictionary lookup, no branching on configuration, and no allocation;
* **lock-free hot path when enabled**: counters use plain integer
  addition (CPython-atomic, same convention as the sentry registry's
  ``notifications_delivered``); histograms append to a bounded reservoir
  under no lock and tolerate the benign races this implies — metrics are
  statistics, not ledgers.

Gauges for queue depths are *pull-based*: a callable registered with
:meth:`MetricsRegistry.gauge_fn` is evaluated only when a snapshot is
taken, so tracking the deferred/detached queue depths costs nothing on
the detection path.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Optional

#: Slowest exemplared samples a histogram retains (per instrument).
EXEMPLAR_CAPACITY = 8


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that can go up and down (queue depths, pool occupancy)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class _HistogramSample:
    """Context manager recording one latency sample into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram"):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_HistogramSample":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class Histogram:
    """Latency distribution: count/sum/min/max plus a bounded reservoir.

    The reservoir keeps the most recent ``reservoir_size`` (up to twice
    that between trims) raw samples so percentiles stay exact for
    benchmark-sized runs while memory stays bounded for production-sized
    ones (older samples fall out of the percentile window but remain in
    count/sum/min/max).  Trimming happens in blocks so the steady-state
    cost of ``observe`` stays amortized O(1).

    ``observe`` optionally takes an *exemplar* — a trace id to pin to the
    sample.  The histogram keeps the :data:`EXEMPLAR_CAPACITY` slowest
    exemplared samples, so an operator looking at a bad p99 can jump
    straight from the bucket to a concrete ``/trace/<id>`` tree.
    """

    __slots__ = ("name", "count", "total", "min", "max", "samples",
                 "reservoir_size", "exemplars")

    def __init__(self, name: str, reservoir_size: int = 4096):
        self.name = name
        self.reservoir_size = reservoir_size
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.samples: list[float] = []
        self.exemplars: list[tuple[float, Any]] = []

    def observe(self, seconds: float, exemplar: Any = None) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        samples = self.samples
        samples.append(seconds)
        if len(samples) >= self.reservoir_size * 2:
            del samples[:self.reservoir_size]
        if exemplar is not None:
            exemplars = self.exemplars
            if len(exemplars) < EXEMPLAR_CAPACITY:
                exemplars.append((seconds, exemplar))
            else:
                floor = min(exemplars)
                if seconds > floor[0]:
                    try:
                        exemplars.remove(floor)
                    except ValueError:
                        pass          # benign race with a peer observer
                    exemplars.append((seconds, exemplar))

    def time(self) -> _HistogramSample:
        """``with histogram.time(): ...`` records the block's duration."""
        return _HistogramSample(self)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile over the retained reservoir."""
        return self._percentile_of(sorted(self.samples), q)

    @staticmethod
    def _percentile_of(ordered: list[float], q: float) -> float:
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1,
                    int(round(q / 100 * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self) -> dict[str, float]:
        """A mutually consistent view of this histogram's fields.

        Writers mutate count/total/min/max/samples without a lock, so a
        naive field-by-field read can pair a new ``count`` with an old
        ``total``.  This capture is seqlock-style: copy the fields, then
        re-read ``count`` — if it moved, a writer interleaved and the
        copy is retried (bounded; the final attempt is accepted as-is,
        keeping the no-lock hot path: metrics are statistics, not
        ledgers, but *exported* values should at least be coherent).
        """
        for _ in range(4):
            count = self.count
            total = self.total
            low = self.min
            high = self.max
            ordered = sorted(self.samples[-self.reservoir_size:])
            if self.count == count:
                break
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": low if count else 0.0,
            "max": high,
            "p50": self._percentile_of(ordered, 50),
            "p95": self._percentile_of(ordered, 95),
            "p99": self._percentile_of(ordered, 99),
            "exemplars": [
                {"value": value, "trace_id": trace_id}
                for value, trace_id in sorted(self.exemplars, reverse=True)
            ],
        }

    def summary(self) -> dict[str, float]:
        return self.snapshot()

    def __repr__(self) -> str:
        return (f"<Histogram {self.name} n={self.count} "
                f"mean={self.mean * 1e6:.1f}us>")


class Counters(dict):
    """A plain counters dict with an :meth:`inc` mutation hook.

    ``inc`` is the one write operation stats owners use; keeping it a
    method (rather than ``stats[key] += 1`` at every call site) lets
    :class:`SeqlockCounters` harden the exact same call sites without
    touching them.  This base class does the legacy unlocked increment.
    """

    __slots__ = ()

    def inc(self, key: Any, n: int = 1) -> None:
        self[key] += n

    def snapshot(self) -> dict[str, Any]:
        return dict(self)


class SeqlockCounters(Counters):
    """A counters dict whose readers never contend with writers.

    ``inc`` takes a writer-side mutex — increments are read-modify-write
    and concurrent committers would otherwise lose updates (``begun``
    must equal ``committed`` when the system is idle; these counters ARE
    ledgers, unlike histogram reservoirs) — and brackets the write with
    a version bump to odd/even (the classic seqlock discipline, same
    family as :meth:`Histogram.snapshot`).  :meth:`snapshot` copies the
    dict with NO lock and retries while a writer is mid-flight or
    interleaved, so a ``db.statistics()`` poller never blocks the commit
    path, yet its multi-key view is coherent.  The final attempt is
    accepted as-is rather than spinning forever.
    """

    __slots__ = ("_version", "_write_lock")

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self._version = 0
        self._write_lock = threading.Lock()

    def inc(self, key: Any, n: int = 1) -> None:
        with self._write_lock:
            self._version += 1
            dict.__setitem__(self, key, dict.__getitem__(self, key) + n)
            self._version += 1

    def __setitem__(self, key: Any, value: Any) -> None:
        with self._write_lock:
            self._version += 1
            dict.__setitem__(self, key, value)
            self._version += 1

    def snapshot(self) -> dict[str, Any]:
        """A coherent lock-free copy (bounded seqlock retry)."""
        for __ in range(8):
            start = self._version
            if start & 1:
                continue
            copy = dict(self)
            if self._version == start:
                return copy
        return dict(self)


class _NullContext:
    """Reusable no-op context manager for disabled instruments."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class NullCounter(Counter):
    """No-op counter handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, n: float = 1) -> None:
        pass

    def dec(self, n: float = 1) -> None:
        pass


class NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, seconds: float, exemplar: Any = None) -> None:
        pass

    def time(self) -> Any:
        return _NULL_CONTEXT


#: Shared null instruments: every disabled registry returns these exact
#: objects, so tests can assert identity to prove the zero-cost path.
NULL_COUNTER = NullCounter("null")
NULL_GAUGE = NullGauge("null")
NULL_HISTOGRAM = NullHistogram("null")


class MetricsRegistry:
    """Names and owns every instrument of one database instance.

    Instrument names are dotted paths (``events.detected``,
    ``rules.fired.immediate``, ``wal.flushes``); requesting the same name
    twice returns the same instrument.  A registry constructed with
    ``enabled=False`` returns the shared null instruments instead and
    records nothing.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._gauge_fns: dict[str, Callable[[], float]] = {}
        # Guards instrument *creation* and snapshot's dict copies; never
        # taken on the increment/observe hot path.
        self._lock = threading.Lock()

    # -- instrument factories -------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.get(name)
                if counter is None:
                    counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.get(name)
                if gauge is None:
                    gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str,
                  reservoir_size: int = 4096) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram(
                        name, reservoir_size=reservoir_size)
        return histogram

    def gauge_fn(self, name: str, fn: Callable[[], float]) -> None:
        """Register a pull-based gauge evaluated at snapshot time only."""
        if self.enabled:
            with self._lock:
                self._gauge_fns[name] = fn

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """An atomic, JSON-serializable view of every instrument.

        Atomic in two senses the exporters and the Prometheus renderer
        rely on: the instrument *tables* are copied under the registry
        lock (so a concurrently created instrument cannot corrupt the
        iteration), and each histogram's fields are captured coherently
        via :meth:`Histogram.snapshot` (so ``count``/``sum``/percentiles
        in one export line belong to the same moment).
        """
        out: dict[str, Any] = {"enabled": self.enabled}
        with self._lock:
            counter_items = sorted(self._counters.items())
            gauge_items = sorted(self._gauges.items())
            gauge_fn_items = sorted(self._gauge_fns.items())
            histogram_items = sorted(self._histograms.items())
        counters = {name: c.value for name, c in counter_items}
        gauges = {name: g.value for name, g in gauge_items}
        for name, fn in gauge_fn_items:
            try:
                gauges[name] = fn()
            except Exception:
                gauges[name] = None
        histograms = {name: h.snapshot() for name, h in histogram_items}
        out["counters"] = counters
        out["gauges"] = gauges
        out["histograms"] = histograms
        return out

    def dump_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def dump_text(self) -> str:
        """Human-readable one-line-per-instrument dump."""
        snap = self.snapshot()
        lines = [f"metrics (enabled={snap['enabled']})"]
        for name, value in snap["counters"].items():
            lines.append(f"  {name:40s} {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"  {name:40s} {value}")
        for name, summary in snap["histograms"].items():
            lines.append(
                f"  {name:40s} n={summary['count']} "
                f"mean={summary['mean'] * 1e6:.1f}us "
                f"p50={summary['p50'] * 1e6:.1f}us "
                f"p95={summary['p95'] * 1e6:.1f}us "
                f"p99={summary['p99'] * 1e6:.1f}us")
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero every owned instrument (benchmark harness hook)."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0
        for histogram in self._histograms.values():
            histogram.count = 0
            histogram.total = 0.0
            histogram.min = float("inf")
            histogram.max = 0.0
            histogram.samples.clear()
            histogram.exemplars.clear()


#: Registry used by components not wired to a database (always disabled).
NULL_METRICS = MetricsRegistry(enabled=False)
