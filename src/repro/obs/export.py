"""Structured telemetry export: spans and metrics leave the process.

The in-process handles (``db.trace()``, ``db.metrics()``) are pull-only;
this module streams the same data out.  Three pieces:

* **exporters** — pluggable sinks (:class:`JsonlFileExporter`,
  :class:`InMemoryExporter`, :class:`CallbackExporter`) consuming one
  JSON-serializable record dict at a time;
* **the pipeline** — :class:`TelemetryPipeline`, a bounded queue drained
  by one daemon thread.  The hot path (a span finishing) *offers* the
  span to the queue: when the queue is full the record is dropped and
  counted, never waited on, so a slow or wedged exporter can never
  backpressure the event pipeline.  Serialization and enrichment run on
  the drain thread;
* **the Prometheus renderer** — :func:`render_prometheus` turns an
  atomic :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` into the
  Prometheus text exposition format for the ``/metrics`` admin endpoint.

Every span record carries ``session_id``, ``tx``, ``rule`` and ``mode``
top-level keys (None when not applicable) so exported telemetry stays
attributable across concurrent sessions.
"""

from __future__ import annotations

import json
import re
import threading
import time
from collections import deque
from typing import Any, Callable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TelemetryExporter:
    """Base sink: receives one record dict per call, on the drain thread."""

    def export(self, record: dict[str, Any]) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Called after each drained batch; override for buffered sinks."""

    def close(self) -> None:
        """Called once when the pipeline shuts down."""


class InMemoryExporter(TelemetryExporter):
    """Collects records in a list (tests, ad-hoc inspection)."""

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = capacity
        self.records: list[dict[str, Any]] = []
        self._lock = threading.Lock()

    def export(self, record: dict[str, Any]) -> None:
        with self._lock:
            self.records.append(record)
            if self.capacity is not None and len(self.records) > self.capacity:
                del self.records[:len(self.records) - self.capacity]

    def take(self) -> list[dict[str, Any]]:
        with self._lock:
            out = self.records[:]
            self.records.clear()
            return out


class CallbackExporter(TelemetryExporter):
    """Hands each record to a user callable."""

    def __init__(self, fn: Callable[[dict[str, Any]], None]):
        self.fn = fn

    def export(self, record: dict[str, Any]) -> None:
        self.fn(record)


class JsonlFileExporter(TelemetryExporter):
    """Appends one JSON line per record to a file (opened lazily)."""

    def __init__(self, path: str):
        self.path = path
        self._fh = None
        self._lock = threading.Lock()

    def export(self, record: dict[str, Any]) -> None:
        with self._lock:
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(json.dumps(record, default=repr) + "\n")

    def flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------


class TelemetryPipeline:
    """Bounded background export queue with drop accounting.

    Construction is cheap and the pipeline is inert until the first
    :meth:`add_exporter`: only then does the drain thread start and the
    tracer's span sink attach, so an engine with no exporters pays
    nothing on the span path.

    The contract the benchmarks assert: :meth:`_offer` never blocks.  A
    full queue increments ``dropped`` and returns; the producing thread
    (a transaction committing, a rule firing) is never coupled to
    exporter latency.
    """

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 capacity: int = 4096):
        self._tracer = tracer
        self._metrics = metrics
        self.capacity = capacity
        self._queue: deque = deque()
        self._exporters: list[TelemetryExporter] = []
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self.enqueued = 0
        self.dropped = 0
        self.exported = 0
        self.export_errors = 0

    # -- wiring --------------------------------------------------------------

    def add_exporter(self, exporter: TelemetryExporter) -> TelemetryExporter:
        with self._lock:
            if self._closed:
                raise RuntimeError("telemetry pipeline is closed")
            self._exporters.append(exporter)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._drain_loop, name="reach-telemetry",
                    daemon=True)
                self._thread.start()
            if self._tracer is not None:
                self._tracer.set_sink(self._offer_span)
        return exporter

    def exporters(self) -> list[TelemetryExporter]:
        with self._lock:
            return list(self._exporters)

    # -- hot path ------------------------------------------------------------

    def _offer(self, item: tuple) -> bool:
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            return False
        self._queue.append(item)
        self.enqueued += 1
        if not self._wake.is_set():
            self._wake.set()
        return True

    def _offer_span(self, span: Span) -> None:
        """Tracer sink: called from ``Span.__exit__`` on finished spans.

        The span object itself is enqueued; serialization (and the root
        lookup that resolves the owning session) runs on the drain
        thread, off the hot path.
        """
        self._offer(("span", span))

    def emit(self, record: dict[str, Any]) -> bool:
        """Queue an application-defined record; False when dropped."""
        return self._offer(("record", dict(record)))

    def export_metrics(self) -> bool:
        """Queue one full metrics snapshot (atomic; see satellite fix in
        :meth:`MetricsRegistry.snapshot`)."""
        if self._metrics is None:
            return False
        return self._offer(("metrics", self._metrics.snapshot()))

    # -- drain thread --------------------------------------------------------

    def _drain_loop(self) -> None:
        while True:
            self._wake.wait(timeout=0.1)
            self._wake.clear()
            if self._queue:
                self._idle.clear()
                try:
                    self._drain_once()
                finally:
                    self._idle.set()
            if self._closed and not self._queue:
                return

    def _drain_once(self) -> None:
        queue = self._queue
        with self._lock:
            exporters = list(self._exporters)
        batch = 0
        while queue:
            try:
                item = queue.popleft()
            except IndexError:
                break
            record = self._serialize(item)
            batch += 1
            for exporter in exporters:
                try:
                    exporter.export(record)
                    self.exported += 1
                except Exception:
                    self.export_errors += 1
        if batch:
            for exporter in exporters:
                try:
                    exporter.flush()
                except Exception:
                    self.export_errors += 1

    def _serialize(self, item: tuple) -> dict[str, Any]:
        kind, payload = item
        if kind == "span":
            return self._span_record(payload)
        if kind == "metrics":
            return {"type": "metrics", "ts": time.time(),
                    "metrics": payload}
        record = dict(payload)
        record.setdefault("type", "record")
        record.setdefault("ts", time.time())
        return record

    def _span_record(self, span: Span) -> dict[str, Any]:
        record = span.to_dict()
        record["type"] = "span"
        attributes = record["attributes"]
        session_id = attributes.get("session_id")
        if session_id is None:
            session_id = self._root_session(span)
        record["session_id"] = session_id
        tenant = attributes.get("tenant")
        if tenant is None:
            tenant = self._root_tenant(span)
        record["tenant"] = tenant
        record["tx"] = attributes.get("tx")
        if span.kind == "scheduler" and span.name.startswith("fire:"):
            record["rule"] = span.name[5:]
        else:
            record["rule"] = None
        record["mode"] = attributes.get("mode")
        return record

    def _root_session(self, span: Span) -> Optional[int]:
        """Resolve the session from the span's trace root.

        Reads the tracer's live table without its lock — a benign race
        (the trace may have been evicted, in which case attribution is
        simply lost for that record), same philosophy as the metrics.
        """
        if self._tracer is None:
            return None
        spans = self._tracer._traces.get(span.trace_id)
        if not spans:
            return None
        try:
            return spans[0].attributes.get("session_id")
        except (IndexError, AttributeError):
            return None

    def _root_tenant(self, span: Span) -> Optional[str]:
        """Resolve the tenant from the span's trace root (same benign
        race as :meth:`_root_session`): a wire-originated trace's first
        recorded span is the server request span, which carries the
        authenticated ``tenant`` attribute."""
        if self._tracer is None:
            return None
        spans = self._tracer._traces.get(span.trace_id)
        if not spans:
            return None
        try:
            return spans[0].attributes.get("tenant")
        except (IndexError, AttributeError):
            return None

    # -- lifecycle -----------------------------------------------------------

    def flush(self, timeout: float = 5.0) -> bool:
        """Wait (bounded) until the queue is drained; True on success."""
        deadline = time.monotonic() + timeout
        self._wake.set()
        while self._queue or not self._idle.is_set():
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.002)
            self._wake.set()
        return True

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._tracer is not None:
                self._tracer.set_sink(None)
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        # Final inline drain: anything the thread left behind still goes
        # out before the exporters close.
        if self._queue:
            self._drain_once()
        for exporter in self.exporters():
            try:
                exporter.close()
            except Exception:
                self.export_errors += 1

    def stats(self) -> dict[str, Any]:
        """JSON-serializable state for ``db.statistics()["telemetry"]``."""
        with self._lock:
            exporters = len(self._exporters)
        return {
            "capacity": self.capacity,
            "queued": len(self._queue),
            "exporters": exporters,
            "enqueued": self.enqueued,
            "exported": self.exported,
            "dropped": self.dropped,
            "export_errors": self.export_errors,
        }


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, prefix: str) -> str:
    return f"{prefix}_{_NAME_SANITIZE.sub('_', name)}"


def _fmt(value: Any) -> str:
    if value is None:
        return "NaN"
    value = float(value)
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value) if value != int(value) else str(int(value))


def render_prometheus(snapshot: dict[str, Any], prefix: str = "reach") -> str:
    """Render a metrics snapshot as Prometheus text exposition format.

    Counters map to ``counter``, gauges to ``gauge``, histograms to
    ``summary`` (quantile series plus ``_sum``/``_count``).  Dots in
    instrument names become underscores; every series is prefixed.
    """
    lines = [f"# TYPE {prefix}_up gauge", f"{prefix}_up 1"]
    enabled = 1 if snapshot.get("enabled") else 0
    lines.append(f"# TYPE {prefix}_observability_enabled gauge")
    lines.append(f"{prefix}_observability_enabled {enabled}")
    for name, value in snapshot.get("counters", {}).items():
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        if value is None:
            continue  # a pull-gauge callable failed; skip the series
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")
    for name, summary in snapshot.get("histograms", {}).items():
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"),
                              ("0.99", "p99")):
            lines.append(f'{metric}{{quantile="{quantile}"}} '
                         f"{_fmt(summary.get(key, 0.0))}")
        total = summary.get("sum")
        if total is None:
            total = summary.get("mean", 0.0) * summary.get("count", 0)
        lines.append(f"{metric}_sum {_fmt(total)}")
        lines.append(f"{metric}_count {int(summary.get('count', 0))}")
    return "\n".join(lines) + "\n"
