"""The parallel class hierarchy of active wrapper classes.

Without source access to the OODBMS, detecting method events "requires
redefinition of all the classes for which method invocations generate
events.  This results in a parallel class hierarchy of active classes that
must be maintained by the application programmer" (paper, Section 4).

:func:`make_active_class` generates such a wrapper subclass.  Its known
deficiencies are the point of the experiment:

* only instances of the *generated* class are monitored — existing code
  creating plain instances escapes detection;
* the application's type declarations change (``ActiveRiver`` is not
  ``River``), unlike the integrated sentry, which leaves the class object
  untouched;
* direct attribute writes bypass the wrapper entirely — state-change
  events require the layer's snapshot polling;
* every monitored class must be regenerated whenever the original or the
  rule set changes, including system-provided classes used by the
  application.
"""

from __future__ import annotations

from typing import Any, Callable, Type

#: Receiver signature: (instance, method_name, args, kwargs, result).
WrapperReceiver = Callable[[Any, str, tuple, dict, Any], None]


def make_active_class(cls: Type, receiver: WrapperReceiver,
                      name: str = "") -> Type:
    """Generate the active wrapper subclass of ``cls``.

    Every public method defined anywhere in ``cls``'s MRO is overridden
    to announce its invocation to ``receiver`` after executing.  The
    wrapper must be regenerated when the base class evolves — the
    maintenance burden the paper complains about.
    """
    namespace: dict[str, Any] = {}
    wrapped: set[str] = set()
    for klass in cls.__mro__:
        if klass is object:
            continue
        for attr_name, attr in vars(klass).items():
            if attr_name.startswith("_") or attr_name in wrapped:
                continue
            if not callable(attr) or isinstance(
                    attr, (staticmethod, classmethod, property, type)):
                continue
            namespace[attr_name] = _wrap(attr_name, receiver)
            wrapped.add(attr_name)
    active_name = name or f"Active{cls.__name__}"
    active_cls = type(active_name, (cls,), namespace)
    active_cls.__wrapped_methods__ = frozenset(wrapped)
    return active_cls


def _wrap(method_name: str, receiver: WrapperReceiver):
    def method(self, *args, **kwargs):
        # The layer crossing: look up the original through super(), run
        # it, then announce.  Two extra frames and a dynamic lookup per
        # call — the overhead E2 measures against the in-line sentry.
        original = getattr(super(type(self), self), method_name)
        result = original(*args, **kwargs)
        receiver(self, method_name, args, kwargs, result)
        return result

    method.__name__ = method_name
    return method


def snapshot_state(obj: Any) -> dict[str, Any]:
    """Public attribute snapshot used by the polling change detector."""
    return {key: value for key, value in vars(obj).items()
            if not key.startswith("_")}


def diff_states(before: dict[str, Any],
                after: dict[str, Any]) -> list[tuple[str, Any, Any]]:
    """(attribute, old, new) for every changed public attribute."""
    changes: list[tuple[str, Any, Any]] = []
    for key, new_value in after.items():
        old_value = before.get(key)
        if key not in before or old_value != new_value:
            changes.append((key, old_value, new_value))
    for key in before:
        if key not in after:
            changes.append((key, before[key], None))
    return changes
