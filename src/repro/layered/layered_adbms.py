"""The layered active DBMS: a rule layer on top of the closed OODBMS.

This is the architecture the paper *abandoned*, implemented honestly so
its shortcomings can be measured (benchmark E2) rather than asserted:

* method events only via generated wrapper classes;
* state-change detection only by **polling** (snapshot diffing), which
  misses intermediate values and costs time proportional to the monitored
  population, not the change rate;
* rule execution strictly serial, with **immediate and deferred coupling
  only** — without nested transactions a failing rule cannot be isolated
  (a rule error aborts the whole user transaction), and without
  transaction-manager access or license seats the detached and causally
  dependent modes are simply unavailable;
* deferred rules drain at the *layer's* commit — applications that call
  the closed OODBMS's own commit bypass the rule system entirely (the
  frequent and fragile interface crossing of Section 2);
* no deletion-triggered rules: persistence by reachability provides no
  event to hang them on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Type

from repro.errors import ClosedSystemError, RuleExecutionError
from repro.layered.closed_oodb import ClosedOODB
from repro.layered.wrappers import (
    diff_states,
    make_active_class,
    snapshot_state,
)


@dataclass
class LayeredRule:
    """A rule in the layered system: immediate or deferred, nothing else."""

    name: str
    class_name: str
    method: Optional[str]          # None = state-change (polling) rule
    attribute: Optional[str] = None
    condition: Optional[Callable[[dict], bool]] = None
    action: Optional[Callable[[dict], None]] = None
    deferred: bool = False
    priority: int = 0
    seq: int = field(default_factory=itertools.count(1).__next__)
    fired_count: int = 0


class LayeredActiveDBMS:
    """Active capabilities layered over a :class:`ClosedOODB`."""

    SUPPORTED_COUPLINGS = ("immediate", "deferred")

    def __init__(self, store: Optional[ClosedOODB] = None):
        self.store = store or ClosedOODB()
        self._rules_by_event: dict[tuple[str, str], list[LayeredRule]] = {}
        self._state_rules: list[LayeredRule] = []
        self._active_classes: dict[str, Type] = {}
        self._deferred_queue: list[tuple[LayeredRule, dict]] = []
        self._watched: list[Any] = []
        self._snapshots: dict[int, dict[str, Any]] = {}
        self.stats = {"events": 0, "fired": 0, "polls": 0,
                      "poll_objects_scanned": 0}

    # ------------------------------------------------------------------
    # Schema: the parallel class hierarchy
    # ------------------------------------------------------------------

    def activate_class(self, cls: Type) -> Type:
        """Generate (or return) the active wrapper class for ``cls``.

        Application code must be changed to instantiate the wrapper —
        the exact burden Section 4 describes.
        """
        existing = self._active_classes.get(cls.__name__)
        if existing is not None:
            return existing
        active_cls = make_active_class(cls, self._on_method_event)
        self._active_classes[cls.__name__] = active_cls
        return active_cls

    def watch(self, obj: Any) -> None:
        """Register an object for polling-based state-change detection."""
        self._watched.append(obj)
        self._snapshots[id(obj)] = snapshot_state(obj)

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    def register_rule(self, rule: LayeredRule,
                      coupling: str = "immediate") -> LayeredRule:
        if coupling not in self.SUPPORTED_COUPLINGS:
            raise ClosedSystemError(
                f"the layered architecture supports only "
                f"{self.SUPPORTED_COUPLINGS}; {coupling!r} requires "
                "transaction-manager access the closed OODBMS does not "
                "provide")
        rule.deferred = coupling == "deferred"
        if rule.method is None:
            self._state_rules.append(rule)
        else:
            key = (rule.class_name, rule.method)
            self._rules_by_event.setdefault(key, []).append(rule)
        return rule

    def on_delete_rule(self, *args, **kwargs) -> None:
        raise ClosedSystemError(
            "deletion-triggered rules are not implementable: persistence "
            "by reachability deletes objects without any observable event")

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------

    def _on_method_event(self, instance: Any, method: str, args: tuple,
                         kwargs: dict, result: Any) -> None:
        self.stats["events"] += 1
        base_name = type(instance).__mro__[1].__name__
        rules = self._rules_by_event.get((base_name, method), ())
        bindings = {"instance": instance, "method": method, "args": args,
                    "kwargs": kwargs, "result": result, "store": self.store}
        for name, value in zip(("x", "y", "z"), args):
            bindings.setdefault(name, value)
        for rule in sorted(rules, key=lambda r: (-r.priority, r.seq)):
            if rule.deferred:
                self._deferred_queue.append((rule, dict(bindings)))
            else:
                self._fire(rule, bindings)

    def poll(self) -> int:
        """Scan every watched object for state changes.

        This is the only state-change detection available; its cost grows
        with the watched population regardless of how little changed, and
        any intermediate values between polls are lost.
        """
        self.stats["polls"] += 1
        detected = 0
        for obj in self._watched:
            self.stats["poll_objects_scanned"] += 1
            before = self._snapshots.get(id(obj), {})
            after = snapshot_state(obj)
            changes = diff_states(before, after)
            if not changes:
                continue
            self._snapshots[id(obj)] = after
            for attribute, old, new in changes:
                detected += 1
                bindings = {"instance": obj, "attribute": attribute,
                            "old_value": old, "new_value": new,
                            "store": self.store}
                for rule in self._state_rules:
                    if not isinstance(obj, self._resolve(rule.class_name)):
                        continue
                    if rule.attribute is not None and \
                            rule.attribute != attribute:
                        continue
                    if rule.deferred:
                        self._deferred_queue.append((rule, dict(bindings)))
                    else:
                        self._fire(rule, bindings)
        return detected

    def _resolve(self, class_name: str) -> Type:
        active = self._active_classes.get(class_name)
        if active is not None:
            return active.__mro__[1]
        return object

    # ------------------------------------------------------------------
    # Execution: strictly serial, no isolation for rule failures
    # ------------------------------------------------------------------

    def _fire(self, rule: LayeredRule, bindings: dict) -> None:
        try:
            if rule.condition is not None and not rule.condition(bindings):
                return
            if rule.action is not None:
                rule.action(bindings)
            rule.fired_count += 1
            self.stats["fired"] += 1
        except Exception as exc:
            # No nested transactions: the rule's effects cannot be rolled
            # back in isolation, so the whole user transaction must go.
            if self.store.in_transaction():
                self.store.abort()
            raise RuleExecutionError(
                f"layered rule {rule.name!r} failed and aborted the user "
                f"transaction: {exc}") from exc

    # ------------------------------------------------------------------
    # The layer's transaction interface (the extra crossing)
    # ------------------------------------------------------------------

    def begin(self) -> None:
        self.store.begin()

    def commit(self) -> None:
        """Poll, drain deferred rules, then commit the closed store."""
        self.poll()
        queue = sorted(self._deferred_queue,
                       key=lambda pair: (-pair[0].priority, pair[0].seq))
        self._deferred_queue.clear()
        for rule, bindings in queue:
            self._fire(rule, bindings)
        self.store.commit()

    def abort(self) -> None:
        self._deferred_queue.clear()
        self.store.abort()
        # Snapshots are now stale: rolled-back state must not register as
        # a fresh change at the next poll.
        for obj in self._watched:
            self._snapshots[id(obj)] = snapshot_state(obj)

    def functionality_matrix(self) -> dict[str, bool]:
        """What this architecture can and cannot do (for E2's report)."""
        return {
            "method events (wrapped classes)": True,
            "method events (unchanged classes)": False,
            "state-change events (exact)": False,
            "state-change events (polled)": True,
            "deletion events": False,
            "transaction events": False,
            "composite events": False,
            "temporal events": False,
            "immediate coupling": True,
            "deferred coupling": True,
            "detached coupling": False,
            "causally dependent couplings": False,
            "parallel rule execution": False,
            "rule failure isolation": False,
        }
