"""The layered-architecture baseline (paper, Section 4).

The paper reports attempting to build active capabilities **on top of**
two closed commercial OODBMSs (O2 and ObjectStore) and aborting the
attempt.  This package reproduces that experiment quantitatively:

* :class:`ClosedOODB` simulates a closed commercial OODBMS with exactly
  the limitations the paper encountered — flat transactions only, no
  method-event trapping, no access to transaction-manager information,
  persistence by reachability without an explicit delete, and a license
  manager that objects to forked transactions.
* :mod:`repro.layered.wrappers` builds the *parallel class hierarchy* of
  active wrapper classes the layered approach forces on applications.
* :class:`LayeredActiveDBMS` is the rule layer on top: serial rule
  execution with immediate/deferred coupling only, state-change detection
  by polling, and no detached or causally dependent modes.

Benchmark E2 runs the same rule workload against this baseline and the
integrated :class:`~repro.core.database.ReachDatabase`.
"""

from repro.layered.closed_oodb import ClosedOODB, ClosedTransaction
from repro.layered.wrappers import make_active_class
from repro.layered.layered_adbms import LayeredActiveDBMS, LayeredRule

__all__ = [
    "ClosedOODB",
    "ClosedTransaction",
    "make_active_class",
    "LayeredActiveDBMS",
    "LayeredRule",
]
