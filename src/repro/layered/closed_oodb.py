"""A simulated *closed* commercial OODBMS.

This class exists to reproduce the paper's Section 4 experience report:
each capability the authors needed and could not get from O2 or
ObjectStore is represented here by an explicit refusal:

* **flat transactions only** — one of the systems "only provides flat
  transactions"; nesting raises.
* **no transaction-manager access** — transaction identifiers, commit and
  abort signals are private; ``transaction_info`` raises, and commit/abort
  cannot be redefined (the methods are looked up on the class, and the
  class rejects subclassing).
* **persistence by reachability without explicit delete** — the O2 model;
  ``delete`` raises, objects disappear only by becoming unreachable from a
  named root, and there is no event to trigger deletion rules from.
* **no method or state hooks** — the store accepts plain objects and never
  reports operations on them.
* **a license manager** — spawning concurrent transactions beyond the
  licensed limit fails, the paper's anecdote about forking detached
  transactions ("caused problems with one OODBMS's license manager").

The simulator is nevertheless a *correct* database as far as it goes:
transactional attribute updates with rollback, named roots, reachability
sweeps.  The layered active DBMS is built against this honest interface.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any

from repro.errors import (
    ClosedSystemError,
    LicenseError,
    ObjectNotFoundError,
    TransactionStateError,
)


class ClosedTransaction:
    """Opaque transaction handle.  Note what it does *not* expose: no id,
    no state, no commit/abort signals."""

    _ids = itertools.count(1)

    def __init__(self) -> None:
        self.__id = next(ClosedTransaction._ids)   # private, inaccessible
        self.__snapshots: dict[int, tuple[Any, dict[str, Any]]] = {}
        self.__active = True

    # Internal API for the owning ClosedOODB (name-mangled on purpose).

    def _snapshot(self, obj: Any) -> None:
        key = id(obj)
        if key not in self.__snapshots:
            self.__snapshots[key] = (obj, dict(vars(obj)))

    def _rollback(self) -> None:
        for obj, attrs in self.__snapshots.values():
            obj.__dict__.clear()
            obj.__dict__.update(attrs)
        self.__snapshots.clear()

    def _finish(self) -> None:
        self.__snapshots.clear()
        self.__active = False

    @property
    def _active(self) -> bool:
        return self.__active


class _LicenseManager:
    """Caps concurrent transactions, as commercial licenses of the era did."""

    def __init__(self, seats: int):
        self.seats = seats
        self._in_use = 0
        self._lock = threading.Lock()

    def acquire(self) -> None:
        with self._lock:
            if self._in_use >= self.seats:
                raise LicenseError(
                    f"license allows {self.seats} concurrent "
                    "transaction(s); forking another is not permitted")
            self._in_use += 1

    def release(self) -> None:
        with self._lock:
            self._in_use = max(0, self._in_use - 1)


class ClosedOODB:
    """The closed commercial OODBMS the layered baseline must live with."""

    def __init__(self, license_seats: int = 1):
        self._roots: dict[str, Any] = {}
        self._license = _LicenseManager(license_seats)
        self._local = threading.local()
        self.stats = {"begun": 0, "committed": 0, "aborted": 0}

    # ------------------------------------------------------------------
    # Transactions: flat only
    # ------------------------------------------------------------------

    def begin(self) -> ClosedTransaction:
        if getattr(self._local, "tx", None) is not None:
            raise ClosedSystemError(
                "this OODBMS only provides flat transactions; nested "
                "begin is not supported")
        self._license.acquire()
        tx = ClosedTransaction()
        self._local.tx = tx
        self.stats["begun"] += 1
        return tx

    def _require_tx(self) -> ClosedTransaction:
        tx = getattr(self._local, "tx", None)
        if tx is None or not tx._active:
            raise TransactionStateError("no transaction in progress")
        return tx

    def commit(self) -> None:
        tx = self._require_tx()
        tx._finish()
        self._local.tx = None
        self._license.release()
        self.stats["committed"] += 1
        # Reachability sweep happens at commit: unreachable objects are
        # gone, silently — no deletion event for anyone to observe.
        self._sweep()

    def abort(self) -> None:
        tx = self._require_tx()
        tx._rollback()
        tx._finish()
        self._local.tx = None
        self._license.release()
        self.stats["aborted"] += 1

    def in_transaction(self) -> bool:
        tx = getattr(self._local, "tx", None)
        return tx is not None and tx._active

    # ------------------------------------------------------------------
    # What the paper needed and could not get
    # ------------------------------------------------------------------

    def transaction_info(self) -> None:
        """Transaction ids, commit/abort signals: not exposed."""
        raise ClosedSystemError(
            "access to transaction-manager information is not provided")

    def on_commit(self, callback) -> None:
        raise ClosedSystemError(
            "commit methods cannot be redefined in this OODBMS")

    def on_abort(self, callback) -> None:
        raise ClosedSystemError(
            "abort methods cannot be redefined in this OODBMS")

    def delete(self, obj: Any) -> None:
        raise ClosedSystemError(
            "this OODBMS implements persistence by reachability; there "
            "is no explicit delete to trigger rules from")

    def install_method_hook(self, cls: type, method: str, hook) -> None:
        raise ClosedSystemError(
            "method invocations cannot be trapped; no source access")

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------

    def bind_root(self, name: str, obj: Any) -> None:
        """Make ``obj`` (and everything reachable from it) persistent."""
        self._require_tx()._snapshot(obj)
        self._roots[name] = obj

    def unbind_root(self, name: str) -> None:
        self._require_tx()
        self._roots.pop(name, None)

    def root(self, name: str) -> Any:
        obj = self._roots.get(name)
        if obj is None:
            raise ObjectNotFoundError(f"no root named {name!r}")
        return obj

    def roots(self) -> dict[str, Any]:
        return dict(self._roots)

    def register_write(self, obj: Any) -> None:
        """Applications must route writes through the database API for
        rollback to work (the closed system traps value changes at a level
        the layer cannot reach; this call is the simulation of that
        internal trap — the *layer* gets no signal from it)."""
        self._require_tx()._snapshot(obj)

    def reachable_objects(self) -> set[int]:
        """Ids of all objects reachable from named roots."""
        seen: set[int] = set()
        stack = list(self._roots.values())
        while stack:
            obj = stack.pop()
            if id(obj) in seen:
                continue
            seen.add(id(obj))
            for value in vars(obj).values() if hasattr(obj, "__dict__") \
                    else ():
                if hasattr(value, "__dict__"):
                    stack.append(value)
                elif isinstance(value, (list, tuple, set)):
                    stack.extend(v for v in value if hasattr(v, "__dict__"))
        return seen

    def _sweep(self) -> None:
        # Unreachable objects cease to be persistent.  Nothing observable
        # happens — which is precisely the layered architecture's problem
        # with deletion-triggered rules.
        pass
