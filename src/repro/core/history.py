"""Distributed event histories.

Each ECA-manager "create[s] an event object and keep[s] local histories of
the created event occurrences.  The maintenance of a highly distributed
history eliminates the bottleneck that would result from centrally logging
the occurrence of events.  ...  a global history is maintained by a
background process after a transaction has committed or has been aborted"
(paper, Section 6.3).

:class:`LocalHistory` is the per-manager log; :class:`GlobalHistory`
collects entries from all local histories once the originating transaction
finishes (or immediately for transaction-less temporal events pending the
next merge).  Because every occurrence carries a global sequence number,
the merged history is totally ordered without any central lock on the
detection path — that absence is what benchmark E7 measures.

Two scaling refinements ride on that same sequence-number property:

* **Segmented local histories** — a :class:`LocalHistory` constructed
  with ``segments > 1`` shards its append log by recording thread, so
  sessions recording into the same manager do not serialize on one lock.
  ``entries()`` re-establishes the total order by sorting on ``seq``.
* **Lazy global merge** — a :class:`GlobalHistory` constructed with
  ``lazy=True`` turns ``merge_transaction``/``merge_transactionless``
  into O(1) enqueue operations; the O(total-history) gather-and-filter
  runs batched at the next *read* (``entries``, ``__len__``,
  ``iter_transaction``, ``merge_all``, ``prune_before``).  This is safe
  precisely because occurrences carry global sequence numbers: merging
  late cannot lose, duplicate, or reorder anything — the merged view is
  a pure function of which occurrences exist, not of when the merge ran
  (see DESIGN.md).  Commits that used to pay a full history scan each
  now pay a list append.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator, Optional

from repro.core.events import EventOccurrence
from repro.obs.metrics import NULL_METRICS, MetricsRegistry


class _Segment:
    """One independently locked shard of a local history."""

    __slots__ = ("lock", "entries", "recorded")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.entries: list[EventOccurrence] = []
        self.recorded = 0


class LocalHistory:
    """Per-ECA-manager append-only log of event occurrences.

    With ``segments == 1`` (the default) this is a single list under a
    single lock and ``entries()`` preserves insertion order.  With
    ``segments > 1`` each recording thread hashes onto its own segment
    (own lock, own list) and ``entries()`` merges them sorted by global
    sequence number; ``capacity`` then bounds each segment at
    ``ceil(capacity / segments)`` so the total stays within one segment's
    worth of the requested bound.
    """

    def __init__(self, name: str, capacity: Optional[int] = None,
                 segments: int = 1):
        if segments < 1:
            raise ValueError("segments must be >= 1")
        self.name = name
        self.capacity = capacity
        self.segments = segments
        self._segment_capacity = (
            None if capacity is None
            else max(1, -(-capacity // segments)))
        self._segs = tuple(_Segment() for _ in range(segments))

    def _segment(self) -> _Segment:
        if len(self._segs) == 1:
            return self._segs[0]
        return self._segs[threading.get_ident() % len(self._segs)]

    def record(self, occ: EventOccurrence) -> None:
        seg = self._segment()
        with seg.lock:
            seg.entries.append(occ)
            seg.recorded += 1
            cap = self._segment_capacity
            if cap is not None and len(seg.entries) > cap:
                del seg.entries[:len(seg.entries) - cap]

    @property
    def recorded(self) -> int:
        """Total occurrences ever recorded (across segments)."""
        return sum(seg.recorded for seg in self._segs)

    def entries(self) -> list[EventOccurrence]:
        if len(self._segs) == 1:
            seg = self._segs[0]
            with seg.lock:
                return list(seg.entries)
        gathered: list[EventOccurrence] = []
        for seg in self._segs:
            with seg.lock:
                gathered.extend(seg.entries)
        gathered.sort(key=lambda occ: occ.seq)
        return gathered

    def __len__(self) -> int:
        return sum(len(seg.entries) for seg in self._segs)

    def clear(self) -> None:
        for seg in self._segs:
            with seg.lock:
                seg.entries.clear()


class GlobalHistory:
    """The merged, totally ordered history of all managers.

    ``merge_transaction(tx_id)`` pulls every not-yet-merged occurrence that
    originated (at least partly) in the finished transaction;
    ``merge_transactionless()`` pulls temporal/no-transaction occurrences.
    Both run off the detection path — in threaded mode on a background
    worker, in synchronous mode right after commit/abort.

    In **lazy** mode both calls merely enqueue the request (O(1) under a
    short lock) and return 0; the actual gather-and-filter is batched at
    the next read.  ``merge_lag`` exposes how many requests are pending.
    Eager mode (the default, and what the unit tests exercise) keeps the
    original merge-now semantics including meaningful return counts.
    """

    def __init__(self, metrics: MetricsRegistry = NULL_METRICS,
                 lazy: bool = False) -> None:
        self.lazy = lazy
        self._lock = threading.Lock()
        self._entries: list[EventOccurrence] = []
        self._merged_seqs: set[int] = set()
        self._sources: list[LocalHistory] = []
        self.merge_operations = 0
        self.deferred_requests = 0
        # Pending lazy-merge requests; tiny critical section (commit path).
        self._pending_lock = threading.Lock()
        self._pending_txs: set[int] = set()
        self._pending_txless = False
        self._m_merges = metrics.counter("history.merges")
        self._m_merged_entries = metrics.counter("history.merged_entries")
        self._m_deferred = metrics.counter("history.merges_deferred")

    def attach_source(self, local: LocalHistory) -> None:
        with self._lock:
            self._sources.append(local)

    def detach_source(self, local: LocalHistory) -> None:
        with self._lock:
            if local in self._sources:
                self._sources.remove(local)

    # ------------------------------------------------------------------

    def merge_transaction(self, tx_id: int) -> int:
        """Merge all occurrences involving top-level transaction ``tx_id``.

        Lazy mode defers the scan and returns 0 (the count materializes
        at the next read); eager mode merges now and returns how many
        entries were added.
        """
        if self.lazy:
            with self._pending_lock:
                self._pending_txs.add(tx_id)
                self.deferred_requests += 1
            self._m_deferred.inc()
            return 0
        return self._merge(lambda occ: tx_id in occ.tx_ids)

    def merge_transactionless(self) -> int:
        """Merge occurrences that originated in no transaction."""
        if self.lazy:
            with self._pending_lock:
                self._pending_txless = True
                self.deferred_requests += 1
            self._m_deferred.inc()
            return 0
        return self._merge(lambda occ: not occ.tx_ids)

    def merge_all(self) -> int:
        """Merge everything (maintenance / shutdown)."""
        with self._pending_lock:
            self._pending_txs.clear()
            self._pending_txless = False
        return self._merge(lambda occ: True)

    @property
    def merge_lag(self) -> int:
        """Deferred merge requests not yet applied (0 in eager mode)."""
        with self._pending_lock:
            return len(self._pending_txs) + (1 if self._pending_txless
                                             else 0)

    def drain(self) -> int:
        """Apply all pending lazy-merge requests in one batched scan.

        Readers call this implicitly; it is also the hook a background
        maintenance thread would use.  Returns entries added.
        """
        with self._pending_lock:
            if not self._pending_txs and not self._pending_txless:
                return 0
            txs = frozenset(self._pending_txs)
            txless = self._pending_txless
            self._pending_txs.clear()
            self._pending_txless = False

        def wanted(occ: EventOccurrence) -> bool:
            if txless and not occ.tx_ids:
                return True
            return not occ.tx_ids.isdisjoint(txs)

        return self._merge(wanted)

    def _merge(self, wanted: Callable[[EventOccurrence], bool]) -> int:
        with self._lock:
            sources = list(self._sources)
        gathered: list[EventOccurrence] = []
        for source in sources:
            gathered.extend(source.entries())
        with self._lock:
            added = 0
            for occ in gathered:
                if occ.seq in self._merged_seqs or not wanted(occ):
                    continue
                self._entries.append(occ)
                self._merged_seqs.add(occ.seq)
                added += 1
            if added:
                self._entries.sort(key=lambda occ: occ.seq)
            self.merge_operations += 1
            self._m_merges.inc()
            self._m_merged_entries.inc(added)
            return added

    # ------------------------------------------------------------------

    def entries(self) -> list[EventOccurrence]:
        self.drain()
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        self.drain()
        with self._lock:
            return len(self._entries)

    def iter_transaction(self, tx_id: int) -> Iterator[EventOccurrence]:
        """Occurrences of one transaction, in global order — the view a
        compensation step would need (the 'price' of distribution the
        paper accepts)."""
        for occ in self.entries():
            if tx_id in occ.tx_ids:
                yield occ

    def stats(self) -> dict:
        """Merge-machinery counters for ``db.concurrency_stats()``."""
        return {
            "lazy": self.lazy,
            "merge_operations": self.merge_operations,
            "deferred_requests": self.deferred_requests,
            "merge_lag": self.merge_lag,
            "merged_entries": len(self._entries),
        }

    def prune_before(self, seq: int) -> int:
        """Drop merged entries with ``occ.seq < seq`` (and also clear
        them from the attached local histories) so long-running systems
        can bound history growth once compensation can no longer need
        the old entries.  Returns the number of global entries dropped.
        """
        self.drain()
        with self._lock:
            before = len(self._entries)
            self._entries = [occ for occ in self._entries
                             if occ.seq >= seq]
            dropped = before - len(self._entries)
            # Keep idempotence bookkeeping for retained entries only.
            self._merged_seqs = {s for s in self._merged_seqs if s >= seq}
            sources = list(self._sources)
        for source in sources:
            retained = [occ for occ in source.entries() if occ.seq >= seq]
            source.clear()
            for occ in retained:
                source.record(occ)
        return dropped


class CentralHistory:
    """A deliberately *centralized* history for benchmark E7.

    Every detection-path record goes through one shared lock, modelling
    the bottleneck the paper's distributed design avoids.  Functionally
    equivalent to recording in local histories + merging.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: list[EventOccurrence] = []

    def record(self, occ: EventOccurrence) -> None:
        with self._lock:
            self._entries.append(occ)

    def entries(self) -> list[EventOccurrence]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
