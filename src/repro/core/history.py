"""Distributed event histories.

Each ECA-manager "create[s] an event object and keep[s] local histories of
the created event occurrences.  The maintenance of a highly distributed
history eliminates the bottleneck that would result from centrally logging
the occurrence of events.  ...  a global history is maintained by a
background process after a transaction has committed or has been aborted"
(paper, Section 6.3).

:class:`LocalHistory` is the per-manager log; :class:`GlobalHistory`
collects entries from all local histories once the originating transaction
finishes (or immediately for transaction-less temporal events pending the
next merge).  Because every occurrence carries a global sequence number,
the merged history is totally ordered without any central lock on the
detection path — that absence is what benchmark E7 measures.
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional

from repro.core.events import EventOccurrence
from repro.obs.metrics import NULL_METRICS, MetricsRegistry


class LocalHistory:
    """Per-ECA-manager append-only log of event occurrences."""

    def __init__(self, name: str, capacity: Optional[int] = None):
        self.name = name
        self.capacity = capacity
        self._entries: list[EventOccurrence] = []
        self._lock = threading.Lock()
        self.recorded = 0

    def record(self, occ: EventOccurrence) -> None:
        with self._lock:
            self._entries.append(occ)
            self.recorded += 1
            if self.capacity is not None and \
                    len(self._entries) > self.capacity:
                del self._entries[:len(self._entries) - self.capacity]

    def entries(self) -> list[EventOccurrence]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class GlobalHistory:
    """The merged, totally ordered history of all managers.

    ``merge_transaction(tx_id)`` pulls every not-yet-merged occurrence that
    originated (at least partly) in the finished transaction;
    ``merge_transactionless()`` pulls temporal/no-transaction occurrences.
    Both run off the detection path — in threaded mode on a background
    worker, in synchronous mode right after commit/abort.
    """

    def __init__(self, metrics: MetricsRegistry = NULL_METRICS) -> None:
        self._lock = threading.Lock()
        self._entries: list[EventOccurrence] = []
        self._merged_seqs: set[int] = set()
        self._sources: list[LocalHistory] = []
        self.merge_operations = 0
        self._m_merges = metrics.counter("history.merges")
        self._m_merged_entries = metrics.counter("history.merged_entries")

    def attach_source(self, local: LocalHistory) -> None:
        with self._lock:
            self._sources.append(local)

    def detach_source(self, local: LocalHistory) -> None:
        with self._lock:
            if local in self._sources:
                self._sources.remove(local)

    # ------------------------------------------------------------------

    def merge_transaction(self, tx_id: int) -> int:
        """Merge all occurrences involving top-level transaction ``tx_id``."""
        return self._merge(lambda occ: tx_id in occ.tx_ids)

    def merge_transactionless(self) -> int:
        """Merge occurrences that originated in no transaction."""
        return self._merge(lambda occ: not occ.tx_ids)

    def merge_all(self) -> int:
        """Merge everything (maintenance / shutdown)."""
        return self._merge(lambda occ: True)

    def _merge(self, wanted) -> int:
        with self._lock:
            sources = list(self._sources)
        gathered: list[EventOccurrence] = []
        for source in sources:
            for occ in source.entries():
                gathered.append(occ)
        with self._lock:
            added = 0
            for occ in gathered:
                if occ.seq in self._merged_seqs or not wanted(occ):
                    continue
                self._entries.append(occ)
                self._merged_seqs.add(occ.seq)
                added += 1
            if added:
                self._entries.sort(key=lambda occ: occ.seq)
            self.merge_operations += 1
            self._m_merges.inc()
            self._m_merged_entries.inc(added)
            return added

    # ------------------------------------------------------------------

    def entries(self) -> list[EventOccurrence]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def iter_transaction(self, tx_id: int) -> Iterator[EventOccurrence]:
        """Occurrences of one transaction, in global order — the view a
        compensation step would need (the 'price' of distribution the
        paper accepts)."""
        for occ in self.entries():
            if tx_id in occ.tx_ids:
                yield occ

    def prune_before(self, seq: int) -> int:
        """Drop merged entries with ``occ.seq < seq`` (and also clear
        them from the attached local histories) so long-running systems
        can bound history growth once compensation can no longer need
        the old entries.  Returns the number of global entries dropped.
        """
        with self._lock:
            before = len(self._entries)
            self._entries = [occ for occ in self._entries
                             if occ.seq >= seq]
            dropped = before - len(self._entries)
            # Keep idempotence bookkeeping for retained entries only.
            self._merged_seqs = {s for s in self._merged_seqs if s >= seq}
            sources = list(self._sources)
        for source in sources:
            retained = [occ for occ in source.entries() if occ.seq >= seq]
            source.clear()
            for occ in retained:
                source.record(occ)
        return dropped


class CentralHistory:
    """A deliberately *centralized* history for benchmark E7.

    Every detection-path record goes through one shared lock, modelling
    the bottleneck the paper's distributed design avoids.  Functionally
    equivalent to recording in local histories + merging.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: list[EventOccurrence] = []

    def record(self, occ: EventOccurrence) -> None:
        with self._lock:
            self._entries.append(occ)

    def entries(self) -> list[EventOccurrence]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
