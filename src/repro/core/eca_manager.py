"""ECA-managers and the event service (paper, Section 6, Figure 2).

"To provide an efficient and highly selective rule firing mechanism, we
use the ECA-managers.  ECA-managers are dedicated to a given event type.
Therefore, they know which set of rules is fired by an event.  If a rule
can be triggered by a simple event, the ECA-manager passes the event and
fires the rule.  ...  If a primitive event is part of a composite event,
the primitive event is passed along to the corresponding event composer."

The flow of Figure 2 maps onto this module:

* a method call is detected by the sentry (implicitly sentried classes),
* the corresponding :class:`PrimitiveECAManager` *creates* the event
  object, *looks up* and fires its direct rules (giving the application
  the go-ahead as soon as no immediately coupled rule remains), *stores*
  the occurrence in its local history, and *propagates* it to the
  composite ECA-managers,
* each :class:`CompositeECAManager` feeds its composer and fires the
  non-immediate rules of completed composites.

Crucially, "only rules that are fired by primitive events can be executed
in an immediate coupling mode": the propagation to composers happens after
the go-ahead and, in threaded mode, asynchronously on worker threads.
"""

from __future__ import annotations

import queue
import threading
from time import perf_counter
from typing import Any, Callable, Hashable, Optional

from repro.config import ExecutionConfig
from repro.core.composer import Composer
from repro.core.events import (
    EventOccurrence,
    EventSpec,
    FlowEventKind,
    FlowEventSpec,
    MethodEventSpec,
    MilestoneEventSpec,
    StateChangeEventSpec,
    TemporalEventSpec,
)
from repro.core.algebra import CompositeEventSpec
from repro.core.history import GlobalHistory, LocalHistory
from repro.core.rules import Rule
from repro.core.scheduler import RuleScheduler
from repro.clock import Clock
from repro.errors import ComposerStateError
from repro.faults.registry import COMPOSER_DISPATCH, NULL_FAULTS, FaultRegistry
from repro.obs.flight import NULL_FLIGHT, FlightRecorder
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import _NULL_SPAN, NULL_TRACER, Tracer
from repro.oodb.meta import (
    MetaArchitecture,
    PolicyManager,
    SystemEvent,
    SystemEventKind,
)
from repro.oodb.sentry import (
    MethodNotification,
    SentryRegistry,
    Subscription,
)
from repro.oodb.transactions import Transaction, TransactionManager


class PrimitiveECAManager:
    """ECA-manager dedicated to one primitive event type."""

    def __init__(self, spec: EventSpec, scheduler: RuleScheduler,
                 global_history: GlobalHistory,
                 tracer: Tracer = NULL_TRACER,
                 metrics: MetricsRegistry = NULL_METRICS,
                 history_capacity: Optional[int] = None,
                 history_segments: int = 1):
        self.spec = spec
        self.key = spec.key()
        self.scheduler = scheduler
        self.tracer = tracer
        self.rules: list[Rule] = []
        #: composite managers (and other listeners) interested in this
        #: primitive event; populated by the event service.
        self.listeners: list[Callable[[EventOccurrence], None]] = []
        self.history = LocalHistory(name=str(self.key),
                                    capacity=history_capacity,
                                    segments=history_segments)
        global_history.attach_source(self.history)
        self.handled = 0
        self._span_name = f"eca:{spec.describe()}"
        self._m_handled = metrics.counter("eca.primitive.handled")

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    def remove_rule(self, rule: Rule) -> None:
        if rule in self.rules:
            self.rules.remove(rule)

    def add_listener(self,
                     listener: Callable[[EventOccurrence], None]) -> None:
        self.listeners.append(listener)

    def remove_listener(self,
                        listener: Callable[[EventOccurrence], None]) -> None:
        if listener in self.listeners:
            self.listeners.remove(listener)

    def handle(self, occ: EventOccurrence,
               propagate: Callable[[EventOccurrence, list], None]) -> None:
        """Figure 2: create -> store -> fire -> propagate.

        Returning from this method is the go-ahead for the application:
        every immediately coupled rule has run; composition continues
        (possibly asynchronously) without blocking normal processing.
        """
        self.handled += 1
        self._m_handled.inc()
        tracer = self.tracer
        if occ.trace_id is None and not tracer.active():
            span_cm = _NULL_SPAN  # unsampled: skip attribute packing
        else:
            span_cm = tracer.span(self._span_name, "eca",
                                  trace_id=occ.trace_id,
                                  parent_id=occ.span_id,
                                  seq=occ.seq)
        with span_cm as span:
            if span is not None:
                # Downstream spans (rule firings, composer feeds — even on
                # other threads) parent under this ECA span via the
                # occurrence-carried context.
                occ.span_id = span.span_id
            self.history.record(occ)
            if self.rules:
                self.scheduler.fire_rules(self.rules, occ)
            if self.listeners:
                propagate(occ, list(self.listeners))


class CompositeECAManager:
    """ECA-manager owning one composer and the rules on its composite."""

    def __init__(self, spec: CompositeEventSpec, scheduler: RuleScheduler,
                 global_history: GlobalHistory, name: str = "",
                 tracer: Tracer = NULL_TRACER,
                 metrics: MetricsRegistry = NULL_METRICS,
                 history_capacity: Optional[int] = None,
                 history_segments: int = 1):
        self.spec = spec
        self.composer = Composer(spec, name=name, tracer=tracer,
                                 metrics=metrics)
        self.scheduler = scheduler
        self.tracer = tracer
        self.rules: list[Rule] = []
        self.history = LocalHistory(name=f"composite:{self.composer.name}",
                                    capacity=history_capacity,
                                    segments=history_segments)
        global_history.attach_source(self.history)
        self._span_name = f"eca:composite:{self.composer.name}"
        self.handled = 0
        self._m_handled = metrics.counter("eca.composite.handled")

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    def remove_rule(self, rule: Rule) -> None:
        if rule in self.rules:
            self.rules.remove(rule)

    def feed(self, occ: EventOccurrence) -> None:
        """Listener hook: feed a primitive occurrence to the composer and
        fire rules for every completed composite."""
        for emission in self.composer.feed(occ):
            self.handle_composite(emission)

    def handle_composite(self, occ: EventOccurrence) -> None:
        self.handled += 1
        self._m_handled.inc()
        tracer = self.tracer
        if occ.trace_id is None and not tracer.active():
            span_cm = _NULL_SPAN  # unsampled: skip attribute packing
        else:
            span_cm = tracer.span(self._span_name, "eca",
                                  trace_id=occ.trace_id,
                                  parent_id=occ.span_id,
                                  seq=occ.seq)
        with span_cm as span:
            if span is not None:
                occ.span_id = span.span_id
            self.history.record(occ)
            if self.rules:
                self.scheduler.fire_rules(self.rules, occ)


class EventService:
    """Routes detected events to ECA-managers and owns the detectors.

    One service per database.  It installs sentry watches for method
    events, listens on the meta-architecture bus for state-change and
    flow-control events, and accepts temporal occurrences from the
    temporal event source.  Composition propagation is synchronous in
    SYNCHRONOUS mode and queued to worker threads in THREADED mode.
    """

    def __init__(self, meta: MetaArchitecture,
                 tx_manager: TransactionManager,
                 scheduler: RuleScheduler,
                 sentry_registry: SentryRegistry,
                 clock: Clock,
                 config: ExecutionConfig,
                 resolve_class: Callable[[str], type],
                 tracer: Tracer = NULL_TRACER,
                 metrics: MetricsRegistry = NULL_METRICS,
                 faults: FaultRegistry = NULL_FAULTS,
                 flight: FlightRecorder = NULL_FLIGHT):
        self.meta = meta
        self.tx_manager = tx_manager
        self.scheduler = scheduler
        self.sentry_registry = sentry_registry
        self.clock = clock
        self.config = config
        self.resolve_class = resolve_class
        self.tracer = tracer
        self.metrics = metrics
        self.flight = flight
        self._m_detected = metrics.counter("events.detected")
        self._fp_dispatch = faults.point(COMPOSER_DISPATCH)
        #: sharded engines install a hook mapping a member transaction id
        #: to the frozen set of ALL member ids of its sharded transaction,
        #: so occurrences detected on any shard correlate under same-tx
        #: composite scope regardless of which member did the detecting.
        #: ``None`` (single-kernel default) leaves tx ids untouched.
        self.tx_group_resolver: Optional[
            Callable[[int], Optional[frozenset[int]]]] = None
        #: engine-installed sink appending one composer snapshot to the
        #: WAL (``StorageManager.append_composer_checkpoint``); ``None``
        #: disables durable composer state (e.g. raw composers in tests).
        self.composer_checkpoint_sink: Optional[
            Callable[[dict], None]] = None
        #: spec key -> chronological COMPOSER_CHECKPOINT payloads found
        #: in the log at recovery; applied (newest first, falling back on
        #: mismatch) when the matching composite manager is re-created.
        self.recovered_composer_state: dict[Hashable, list[dict]] = {}
        #: engine-installed hook marking pre-crash transaction ids as
        #: decided (``TransactionManager.seed_recovered_outcomes``):
        #: restored half-matches reference transactions of the crashed
        #: incarnation, and detached work scheduled off a recovered
        #: completion would otherwise wait on their outcome forever.
        self.recovered_tx_sink: Optional[
            Callable[[frozenset[int]], int]] = None
        self.composer_checkpoints_emitted = 0
        self.composer_checkpoint_errors = 0
        self.composer_restores = 0
        self.composer_checkpoint_fallbacks = 0
        self.composer_suffix_replayed = 0
        self._detect_span_names: dict[Hashable, str] = {}
        # Concurrency knobs (ConcurrencyConfig): lazy merge turns the
        # per-commit history merge into an O(1) enqueue; segments shard
        # each manager's local log across recording threads.
        concurrency = getattr(config, "concurrency", None)
        self._history_segments = (concurrency.history_segments
                                  if concurrency is not None else 1)
        self.global_history = GlobalHistory(
            metrics=metrics,
            lazy=(concurrency.lazy_history_merge
                  if concurrency is not None else False))
        self._primitive: dict[Hashable, PrimitiveECAManager] = {}
        self._composite: dict[Hashable, CompositeECAManager] = {}
        self._subscriptions: list[Subscription] = []
        self._lock = threading.RLock()
        self.events_detected = 0
        #: set by benchmark E5 to simulate the rejected design in which
        #: every method event waits for negative acknowledgements from all
        #: composers before the application proceeds.
        self.force_synchronous_propagation = not config.threaded
        self._queue: Optional[queue.Queue] = None
        self._workers: list[threading.Thread] = []
        self._closing = False
        if config.threaded:
            self._queue = queue.Queue()
            for index in range(config.worker_threads):
                worker = threading.Thread(
                    target=self._composition_worker,
                    name=f"reach-composer-{index}", daemon=True)
                worker.start()
                self._workers.append(worker)

    # ------------------------------------------------------------------
    # Manager registry
    # ------------------------------------------------------------------

    def primitive_manager(self, spec: EventSpec) -> PrimitiveECAManager:
        """Get or create the ECA-manager (and detector) for a primitive."""
        key = spec.key()
        with self._lock:
            manager = self._primitive.get(key)
            if manager is None:
                manager = PrimitiveECAManager(
                    spec, self.scheduler, self.global_history,
                    tracer=self.tracer, metrics=self.metrics,
                    history_capacity=self.config.history_capacity,
                    history_segments=self._history_segments)
                self._primitive[key] = manager
                self._install_detector(spec)
            return manager

    def composite_manager(self, spec: CompositeEventSpec, name: str = "",
                          wire_leaves: bool = True) -> CompositeECAManager:
        key = spec.key()
        with self._lock:
            manager = self._composite.get(key)
            if manager is not None:
                return manager
            manager = CompositeECAManager(
                spec, self.scheduler, self.global_history, name=name,
                tracer=self.tracer, metrics=self.metrics,
                history_capacity=self.config.history_capacity,
                history_segments=self._history_segments)
            self._composite[key] = manager
        # Durable-detection recovery: if the WAL carried checkpointed
        # state for this composite, rebuild the half-matched graphs now —
        # before the leaves are wired, so no live occurrence can race the
        # restore.
        payloads = self.recovered_composer_state.get(key)
        if payloads:
            self._restore_composer_state(manager, payloads)
        # Every leaf primitive must be detectable and must propagate here.
        # A sharded coordinator passes wire_leaves=False and connects the
        # leaves itself: each leaf detects on its own home shard and feeds
        # this manager through the cross-shard event bus instead.
        if wire_leaves:
            for leaf in spec.leaves():
                if isinstance(leaf, TemporalEventSpec) and \
                        isinstance(leaf, MilestoneEventSpec):
                    pass  # milestones are raised explicitly, manager suffices
                primitive = self.primitive_manager(leaf)
                primitive.add_listener(manager.feed)
        return manager

    def _restore_composer_state(self, manager: CompositeECAManager,
                                payloads: list[dict]) -> None:
        """Apply the newest consistent checkpoint, then replay the
        post-checkpoint suffix of the global history.

        Payloads are tried newest-first; a version/spec-key/structure
        mismatch falls back to the previous consistent checkpoint (torn
        frames never got this far — WAL CRC framing already dropped
        them), counted and flight-recorded either way.  Suffix replay
        feeds the composer directly, *not* the manager: any composite
        completed by a replayed occurrence already fired before the
        crash (checkpoints are cut at commit boundaries, after firing),
        so re-emitting it would be a duplicate.
        """
        composer = manager.composer
        watermark: Optional[int] = None
        for payload in reversed(payloads):
            try:
                watermark = composer.restore_state(payload)
            except ComposerStateError as exc:
                self.composer_checkpoint_fallbacks += 1
                if self.flight.enabled:
                    self.flight.record("composer.checkpoint_fallback",
                                       composer=composer.name,
                                       error=str(exc))
                continue
            break
        if watermark is None:
            return  # every payload was inconsistent: start fresh
        self.composer_restores += 1
        if self.recovered_tx_sink is not None and composer.restored_tx_ids:
            self.recovered_tx_sink(composer.restored_tx_ids)
        replayed = 0
        keys = composer.interested_keys
        for occ in self.global_history.entries():
            if occ.seq > watermark and occ.spec_key in keys:
                composer.feed(occ)
                replayed += 1
        self.composer_suffix_replayed += replayed
        if self.flight.enabled:
            self.flight.record("composer.restore", composer=composer.name,
                               watermark=watermark, suffix_replayed=replayed)

    def emit_composer_checkpoints(self, force: bool = False) -> int:
        """Snapshot every dirty composer into the WAL (commit boundary).

        ``force`` snapshots clean composers too — used when checkpoint
        truncation wiped the log and every composer must re-seed it.
        Returns the number of checkpoints appended.
        """
        sink = self.composer_checkpoint_sink
        if sink is None:
            return 0
        emitted = 0
        for manager in self.composite_managers():
            composer = manager.composer
            if not force and not composer.dirty:
                continue
            try:
                sink(composer.snapshot_state())
            except Exception:
                # A failing append must not poison the commit path; the
                # previous durable checkpoint simply stays authoritative.
                self.composer_checkpoint_errors += 1
                continue
            emitted += 1
        self.composer_checkpoints_emitted += emitted
        return emitted

    def collect_composer_snapshots(self) -> list[dict]:
        """Current full snapshots of every composer (checkpoint
        compaction: N incremental WAL records collapse to these).

        Recovered payloads whose composite has not been re-registered
        yet are carried forward verbatim (newest per key) — a storage
        checkpoint must not lose state that is merely waiting for its
        rule to come back.
        """
        snapshots = []
        live: set[Hashable] = set()
        for manager in self.composite_managers():
            live.add(manager.spec.key())
            snapshots.append(manager.composer.snapshot_state())
        for key, payloads in self.recovered_composer_state.items():
            if key not in live and payloads:
                snapshots.append(payloads[-1])
        return snapshots

    def composer_stats(self) -> dict[str, Any]:
        """Durable-detection view: half-matched state and checkpoint
        counters (admin ``/composer``, ``reproctl composer``)."""
        composers = []
        half_matched_groups = 0
        pending = 0
        for manager in self.composite_managers():
            composer = manager.composer
            groups = composer.graph_instance_count()
            half_matched_groups += groups
            pending += composer.pending_count()
            composers.append({
                "name": composer.name,
                "scope": composer.scope.value,
                "policy": composer.spec.consumption.value,
                "groups": groups,
                "pending": composer.pending_count(),
                "dirty": composer.dirty,
                "restored_watermark": composer.restored_watermark,
                "dropped_parameters":
                    composer.checkpoint_dropped_parameters,
            })
        return {
            "composers": composers,
            "half_matched_groups": half_matched_groups,
            "pending_semi_composed": pending,
            "checkpoints_emitted": self.composer_checkpoints_emitted,
            "checkpoint_errors": self.composer_checkpoint_errors,
            "restores": self.composer_restores,
            "checkpoint_fallbacks": self.composer_checkpoint_fallbacks,
            "suffix_replayed": self.composer_suffix_replayed,
        }

    def primitive_managers(self) -> list[PrimitiveECAManager]:
        with self._lock:
            return list(self._primitive.values())

    def composite_managers(self) -> list[CompositeECAManager]:
        with self._lock:
            return list(self._composite.values())

    def composers(self) -> list[Composer]:
        return [m.composer for m in self.composite_managers()]

    # ------------------------------------------------------------------
    # Detection: building occurrences
    # ------------------------------------------------------------------

    def _expand_tx_ids(self, tx_ids: frozenset[int]) -> frozenset[int]:
        """Widen member transaction ids to their full sharded-tx group."""
        resolver = self.tx_group_resolver
        if resolver is None or not tx_ids:
            return tx_ids
        expanded = set(tx_ids)
        for tx_id in tx_ids:
            group = resolver(tx_id)
            if group:
                expanded |= group
        return frozenset(expanded)

    def _current_tx_ids(self) -> frozenset[int]:
        tx = self.tx_manager.current()
        if tx is None:
            return frozenset()
        return self._expand_tx_ids(frozenset({tx.top_level().id}))

    def _current_session_id(self) -> Optional[int]:
        """The detecting session, for trace-root and flight attribution:
        the context's session when one is bound to the thread, else the
        current transaction's (covers worker threads running detached
        work whose transaction carries the originating session)."""
        sid = self.tx_manager.current_session_id()
        if sid is not None:
            return sid
        tx = self.tx_manager.current()
        return tx.session_id if tx is not None else None

    def emit(self, spec: EventSpec, parameters: dict[str, Any],
             tx_ids: Optional[frozenset[int]] = None) -> EventOccurrence:
        """Create an occurrence of a registered primitive and route it.

        With tracing enabled this is where a trace is born: the detection
        span roots the trace (or joins the calling thread's open span when
        a rule action raises a cascading event) and its ids travel on the
        occurrence through composition and firing.
        """
        occ = EventOccurrence(
            spec=spec,
            category=spec.category(),
            timestamp=self.clock.now(),
            tx_ids=self._current_tx_ids() if tx_ids is None else tx_ids,
            parameters=parameters)
        tracer = self.tracer
        flight = self.flight
        if not tracer.enabled and not flight.enabled:
            # Disabled fast path: detection costs two attribute checks.
            self.route(occ)
            return occ
        # Span names are cached per spec: describe() walks the spec tree
        # and must not run on every detection.
        span_name = self._detect_span_names.get(occ.spec_key)
        if span_name is None:
            span_name = self._detect_span_names[occ.spec_key] = \
                f"detect:{spec.describe()}"
        sid = self._current_session_id()
        if not tracer.enabled:
            if flight.enabled:
                flight.record("event", seq=occ.seq,
                              spec=span_name[7:], session=sid)
            self.route(occ)
            return occ
        # Signal-time stamp for the end-to-end detection-latency SLO
        # histograms (observed by the scheduler at action completion).
        occ.detected_at = perf_counter()
        if not tracer.active():
            # Root sampling is guaranteed to drop this trace: skip the
            # span attempt (attribute packing included) entirely.  The
            # occurrence travels context-free, like one from an
            # untraced engine, but keeps its SLO timestamp.
            if flight.enabled:
                flight.record("event", seq=occ.seq,
                              spec=span_name[7:], session=sid)
            self.route(occ)
            return occ
        # The detecting session travels on the trace root so exporters
        # and eviction tests can attribute whole traces to sessions.
        if sid is not None:
            span_cm = tracer.span(span_name, "sentry", seq=occ.seq,
                                  session_id=sid)
        else:
            span_cm = tracer.span(span_name, "sentry", seq=occ.seq)
        with span_cm as span:
            # ``span`` is None when root sampling dropped this trace; the
            # occurrence then travels context-free, exactly like one from
            # an untraced engine.
            if span is not None:
                occ.trace_id = span.trace_id
                occ.span_id = span.span_id
            if flight.enabled:
                if span is not None:
                    flight.record("event", seq=occ.seq,
                                  spec=span_name[7:], session=sid,
                                  trace_id=span.trace_id)
                else:
                    flight.record("event", seq=occ.seq,
                                  spec=span_name[7:], session=sid)
            self.route(occ)
        return occ

    def route(self, occ: EventOccurrence) -> None:
        self.events_detected += 1
        self._m_detected.inc()
        with self._lock:
            manager = self._primitive.get(occ.spec_key)
        if manager is not None:
            manager.handle(occ, self._propagate)

    def _propagate(self, occ: EventOccurrence, listeners: list) -> None:
        # An armed dispatch fault can stall (delay) or fail propagation
        # before any composition listener sees the occurrence.
        self._fp_dispatch.hit(seq=occ.seq)
        if self._queue is None or self.force_synchronous_propagation:
            for listener in listeners:
                listener(occ)
        else:
            self._queue.put((occ, listeners))

    def _composition_worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            occ, listeners = item
            # Bind the owning engine's event scope: rules fired from the
            # composer thread must deliver their own (sentried) events to
            # this engine only, not to every engine in the process.
            with self.sentry_registry.bound():
                self._process(occ, listeners)

    def _process(self, occ: EventOccurrence, listeners: list) -> None:
        for listener in listeners:
            try:
                listener(occ)
            except Exception as exc:  # keep the worker alive
                self.scheduler.errors.append((None, exc))

    def wait_for_composition(self, timeout: float = 10.0) -> None:
        """Block until the composition queue is drained (threaded mode)."""
        if self._queue is None:
            return
        import time as _time
        deadline = _time.monotonic() + timeout
        while not self._queue.empty():
            if _time.monotonic() > deadline:
                raise TimeoutError("composition queue did not drain")
            _time.sleep(0.001)

    # ------------------------------------------------------------------
    # Detector installation per primitive flavour
    # ------------------------------------------------------------------

    def _install_detector(self, spec: EventSpec) -> None:
        if isinstance(spec, MethodEventSpec):
            cls = self.resolve_class(spec.class_name)
            subscription = self.sentry_registry.watch_method(
                cls, spec.method,
                self._method_receiver(spec),
                moment=spec.moment)
            self._subscriptions.append(subscription)
        # State-change, flow and temporal events need no per-spec detector:
        # state/flow occurrences are driven from the bus by the rule PM,
        # temporal occurrences by the temporal event source.

    def _method_receiver(self, spec: MethodEventSpec):
        def receive(note: MethodNotification) -> None:
            if note.exception is not None:
                return  # events are raised for successful execution only
            parameters: dict[str, Any] = {
                "instance": note.instance,
                "method": note.method,
                "args": note.args,
                "kwargs": note.kwargs,
                "result": note.result,
            }
            self.emit(spec, parameters)
        return receive

    # -- bus-driven occurrences (called by the rule policy manager) -----------

    def dispatch_state_change(self, event: SystemEvent) -> None:
        instance = event.info.get("instance")
        attribute = event.info.get("attribute")
        if instance is None or attribute is None:
            return
        parameters = {
            "instance": instance,
            "attribute": attribute,
            "old_value": event.info.get("old_value"),
            "new_value": event.info.get("new_value"),
            "had_old_value": event.info.get("had_old_value", False),
        }
        with self._lock:
            candidates = [
                manager for key, manager in self._primitive.items()
                if isinstance(manager.spec, StateChangeEventSpec)
            ]
        for manager in candidates:
            spec = manager.spec
            if spec.attribute is not None and spec.attribute != attribute:
                continue
            cls = self.resolve_class(spec.class_name)
            if not isinstance(instance, cls):
                continue
            self.emit(spec, dict(parameters))

    def dispatch_flow(self, kind: FlowEventKind,
                      event: SystemEvent) -> None:
        spec = FlowEventSpec(kind)
        with self._lock:
            manager = self._primitive.get(spec.key())
        if manager is None:
            return
        tx = event.info.get("tx")
        parameters = dict(event.info)
        tx_ids: Optional[frozenset[int]] = None
        if tx is not None:
            tx_ids = self._expand_tx_ids(frozenset({tx.top_level().id}))
        self.emit(manager.spec, parameters, tx_ids=tx_ids)

    def dispatch_temporal(self, spec: TemporalEventSpec,
                          parameters: dict[str, Any]) -> None:
        """Temporal occurrences originate in no transaction."""
        with self._lock:
            manager = self._primitive.get(spec.key())
        if manager is None:
            return
        self.emit(manager.spec, parameters, tx_ids=frozenset())

    # ------------------------------------------------------------------
    # Lifespan maintenance
    # ------------------------------------------------------------------

    def on_transaction_end(self, tx: Transaction) -> int:
        """Discard single-transaction composition graphs (Section 3.3)."""
        removed = 0
        for manager in self.composite_managers():
            removed += manager.composer.on_transaction_end(tx.id)
        return removed

    def collect_garbage(self) -> int:
        """Sweep expired semi-composed events from all composers."""
        now = self.clock.now()
        return sum(manager.composer.gc(now)
                   for manager in self.composite_managers())

    def pending_semi_composed(self) -> int:
        return sum(manager.composer.pending_count()
                   for manager in self.composite_managers())

    # ------------------------------------------------------------------

    def close(self) -> None:
        self._closing = True
        if self._queue is not None:
            for __ in self._workers:
                self._queue.put(None)
            for worker in self._workers:
                worker.join(timeout=5.0)
            self._queue = None
            self._workers.clear()
        for subscription in self._subscriptions:
            subscription.cancel()
        self._subscriptions.clear()


class ReachRulePolicyManager(PolicyManager):
    """The Rule PM plugged onto the Open OODB software bus.

    Bridges system events to REACH primitive events, drains deferred rules
    at top-level EOT, enforces composite lifespans and merges the global
    history at transaction end, and releases causally dependent detached
    work once outcomes are known.
    """

    name = "Rule PM (REACH)"
    subscribed_kinds = (
        SystemEventKind.STATE_CHANGE,
        SystemEventKind.TX_BEGIN,
        SystemEventKind.TX_PRE_COMMIT,
        SystemEventKind.TX_COMMIT,
        SystemEventKind.TX_ABORT,
        SystemEventKind.PERSIST,
        SystemEventKind.OBJECT_DELETE,
        SystemEventKind.FETCH,
    )

    _FLOW_OF = {
        SystemEventKind.TX_BEGIN: FlowEventKind.BOT,
        SystemEventKind.TX_PRE_COMMIT: FlowEventKind.EOT,
        SystemEventKind.TX_COMMIT: FlowEventKind.COMMIT,
        SystemEventKind.TX_ABORT: FlowEventKind.ABORT,
        SystemEventKind.PERSIST: FlowEventKind.PERSIST,
        SystemEventKind.OBJECT_DELETE: FlowEventKind.DELETE,
        SystemEventKind.FETCH: FlowEventKind.FETCH,
    }

    def __init__(self, service: EventService, scheduler: RuleScheduler):
        super().__init__()
        self.service = service
        self.scheduler = scheduler

    def on_event(self, event: SystemEvent) -> None:
        kind = event.kind
        if kind is SystemEventKind.STATE_CHANGE:
            self.service.dispatch_state_change(event)
            return
        tx: Optional[Transaction] = event.info.get("tx")
        if kind in (SystemEventKind.TX_BEGIN, SystemEventKind.TX_PRE_COMMIT,
                    SystemEventKind.TX_COMMIT, SystemEventKind.TX_ABORT):
            # Flow events are raised for top-level *user* transactions only;
            # rule subtransactions would flood the event system and recurse.
            if tx is not None and tx.is_top_level and tx.rule_depth == 0:
                self.service.dispatch_flow(self._FLOW_OF[kind], event)
        else:
            self.service.dispatch_flow(self._FLOW_OF[kind], event)
        if tx is None:
            return
        if kind is SystemEventKind.TX_PRE_COMMIT and tx.is_top_level:
            self.scheduler.drain_deferred(tx)
        elif kind in (SystemEventKind.TX_COMMIT, SystemEventKind.TX_ABORT) \
                and tx.is_top_level:
            self.service.on_transaction_end(tx)
            self.service.global_history.merge_transaction(tx.id)
            self.service.global_history.merge_transactionless()
            # Commit boundary: persist any composer whose partial-match
            # state changed, after the lifespan sweep above so finished
            # single-tx graphs are not checkpointed.  The record rides
            # the next WAL force rather than paying its own fsync.
            self.service.emit_composer_checkpoints()
            self.scheduler.on_transaction_outcome(tx)

    def describe(self) -> str:
        primitive = len(self.service.primitive_managers())
        composite = len(self.service.composite_managers())
        return (f"{self.name} ({primitive} primitive ECA-managers, "
                f"{composite} composite ECA-managers)")
