"""ECA rules: event, condition, action, coupling modes, priorities.

A REACH rule (paper, Sections 3 and 6.1) separates the triggering **event**
from the **condition** and **action** parts.  Conditions and actions may
have different coupling modes relative to the triggering transaction — the
rule DDL writes ``cond imm ... action deferred ...`` — subject to the
constraint that the action may not be scheduled *earlier* than the
condition.  Rules carry priorities; same-priority ties are broken by the
rule's timestamp (oldest-first by default, Section 6.4).

Rules are mapped onto rule objects whose :meth:`Rule.evaluate_condition`
and :meth:`Rule.execute_action` call the attached functions, mirroring the
paper's base class ``Rule`` with ``evalCond()`` and ``execAction()``.
Specialized rule classes (consistency management, replication management,
...) can be derived from this base class.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.coupling import CouplingMode
from repro.core.events import EventOccurrence, EventSpec
from repro.errors import RuleDefinitionError, RuleExecutionError

#: Scheduling order of coupling modes: a rule's action may not be coupled
#: earlier than its condition.
_COUPLING_ORDER = {
    CouplingMode.IMMEDIATE: 0,
    CouplingMode.DEFERRED: 1,
    CouplingMode.DETACHED: 2,
    CouplingMode.PARALLEL_CAUSALLY_DEPENDENT: 2,
    CouplingMode.SEQUENTIAL_CAUSALLY_DEPENDENT: 2,
    CouplingMode.EXCLUSIVE_CAUSALLY_DEPENDENT: 2,
}


@dataclass
class RuleContext:
    """Everything a condition or action can see.

    ``bindings`` maps variable names to values: the event's parameters
    (instance, args, result, old/new values, ...), the names declared by
    the rule DDL's ``decl`` clause, and any positional parameter names of
    the event clause.
    """

    rule: "Rule"
    event: EventOccurrence
    db: Any
    bindings: dict[str, Any] = field(default_factory=dict)
    transaction: Any = None

    def __getitem__(self, name: str) -> Any:
        return self.bindings[name]

    def get(self, name: str, default: Any = None) -> Any:
        return self.bindings.get(name, default)


Condition = Callable[[RuleContext], bool]
Action = Callable[[RuleContext], None]


class Rule:
    """One ECA rule.

    Args:
        name: unique rule name.
        event: the triggering event specification (primitive or composite).
        condition: predicate over the context; ``None`` means always true.
        action: the action callable; required.
        coupling: shorthand setting both condition and action coupling.
        cond_coupling / action_coupling: individual modes; the action mode
            may not be scheduled earlier than the condition mode.
        priority: larger fires earlier (the DDL's ``prio``).
        critical: a failing critical rule aborts the triggering transaction
            (immediate/deferred) instead of only its own subtransaction.
        enabled: disabled rules stay registered but never fire.
        description: free-text documentation.

    Subclass and override :meth:`evaluate_condition` /
    :meth:`execute_action` for specialized rule families.
    """

    _creation_counter = itertools.count(1)

    def __init__(self, name: str, event: EventSpec,
                 action: Optional[Action] = None,
                 condition: Optional[Condition] = None,
                 condition_query: Optional[str] = None,
                 coupling: CouplingMode = CouplingMode.IMMEDIATE,
                 cond_coupling: Optional[CouplingMode] = None,
                 action_coupling: Optional[CouplingMode] = None,
                 priority: int = 0,
                 critical: bool = False,
                 enabled: bool = True,
                 transfer_locks: bool = False,
                 description: str = ""):
        if not name:
            raise RuleDefinitionError("a rule needs a name")
        if event is None:
            raise RuleDefinitionError(f"rule {name!r} needs an event")
        if condition is not None and condition_query is not None:
            raise RuleDefinitionError(
                f"rule {name!r}: give either condition or condition_query")
        self.name = name
        self.event = event
        self.condition = condition
        #: OQL condition (Section 7's planned ECA + OQL[C++] combination):
        #: the condition holds iff the query returns a non-empty result.
        #: Event parameters are bound as query variables.
        self.condition_query = condition_query
        self.action = action
        self.cond_coupling = cond_coupling or coupling
        self.action_coupling = action_coupling or self.cond_coupling
        if _COUPLING_ORDER[self.action_coupling] < \
                _COUPLING_ORDER[self.cond_coupling]:
            raise RuleDefinitionError(
                f"rule {name!r}: action coupling "
                f"{self.action_coupling.value!r} is earlier than condition "
                f"coupling {self.cond_coupling.value!r}")
        if self.cond_coupling.is_detached and \
                self.action_coupling is not self.cond_coupling:
            raise RuleDefinitionError(
                f"rule {name!r}: a detached condition must share its "
                "coupling mode with the action")
        self.priority = priority
        self.critical = critical
        self.enabled = enabled
        #: exclusive causally dependent only: move the aborted trigger's
        #: locks to the contingency transaction (paper, Section 4).
        self.transfer_locks = transfer_locks
        self.description = description
        self.created_seq = next(Rule._creation_counter)
        self.fired_count = 0
        self.condition_rejections = 0
        #: consecutive failed executions (reset by any success); at the
        #: configured ``quarantine_threshold`` the scheduler quarantines
        #: the rule: ``quarantined = True`` and ``enabled = False`` until
        #: an operator clears both.
        self.consecutive_failures = 0
        self.quarantined = False

    # ------------------------------------------------------------------

    @property
    def coupling(self) -> CouplingMode:
        """The condition coupling — what Table 1 constrains first."""
        return self.cond_coupling

    def bind(self, occ: EventOccurrence) -> dict:
        """Build this rule's variable bindings for one occurrence.

        Starts from the occurrence's generic parameters, then resolves the
        rule's own parameter names and instance bindings (``decl`` names
        and ``event after var.method(x)`` arguments) against the matching
        primitive components — rules with different bindings share one
        ECA-manager per event type, so binding is a rule-side concern.
        """
        bindings = dict(occ.parameters)
        leaves = self.event.leaves()
        primitives = occ.all_primitive_components()
        for leaf in leaves:
            param_names = getattr(leaf, "param_names", ())
            instance_binding = getattr(leaf, "instance_binding", None)
            if not param_names and not instance_binding:
                continue
            for primitive in primitives:
                if primitive.spec_key != leaf.key():
                    continue
                args = primitive.parameters.get("args", ())
                for name, value in zip(param_names, args):
                    bindings[name] = value
                if instance_binding is not None:
                    bindings[instance_binding] = \
                        primitive.parameters.get("instance")
                break
        return bindings

    def evaluate_condition(self, ctx: RuleContext) -> bool:
        """``evalCond()``: run the condition (default True).

        A ``condition_query`` holds when the OQL query returns at least
        one row; the result rows are bound as ``ctx.bindings['matched']``
        for the action.  A callable ``condition`` is simply invoked.
        """
        if self.condition_query is not None:
            try:
                rows = ctx.db.query_processor.execute(
                    self.condition_query, env=ctx.bindings)
            except Exception as exc:
                raise RuleExecutionError(
                    f"rule {self.name!r}: condition query raised "
                    f"{exc!r}") from exc
            ctx.bindings["matched"] = rows
            return bool(rows)
        if self.condition is None:
            return True
        try:
            return bool(self.condition(ctx))
        except Exception as exc:
            raise RuleExecutionError(
                f"rule {self.name!r}: condition raised {exc!r}") from exc

    def execute_action(self, ctx: RuleContext) -> None:
        """``execAction()``: run the action function."""
        if self.action is None:
            return
        try:
            self.action(ctx)
        except Exception as exc:
            raise RuleExecutionError(
                f"rule {self.name!r}: action raised {exc!r}") from exc

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def __repr__(self) -> str:
        return (f"<Rule {self.name!r} on {self.event.describe()} "
                f"{self.cond_coupling.value}/{self.action_coupling.value} "
                f"prio={self.priority}>")


def sort_for_firing(rules: list[Rule], newest_first: bool = False,
                    simple_events_first: bool = False) -> list[Rule]:
    """Order rules for execution (paper, Section 6.4).

    Priorities are the main criterion (higher first).  Ties break on the
    rule's timestamp: oldest rule first by default, newest first
    optionally.  The third policy — rules with simple events ahead of rules
    with complex events — applies to the deferred queue.
    """
    def sort_key(rule: Rule):
        composite = 1 if rule.event.category().is_composite else 0
        tie = -rule.created_seq if newest_first else rule.created_seq
        if simple_events_first:
            return (-rule.priority, composite, tie)
        return (-rule.priority, tie)

    return sorted(rules, key=sort_key)
