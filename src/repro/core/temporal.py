"""Temporal event source: absolute, relative, periodic events; milestones.

Temporal events (paper, Section 3.1) "can be either absolute or relative,
periodic or aperiodic".  REACH additionally defines **milestones** — "a
special kind of temporal event ... used for time-constrained processing and
can be applied to tracking the progress of a transaction relative to its
deadline.  If the transaction does not reach a milestone in time, the
probability of missing its deadline is high and a contingency plan can be
invoked."

All scheduling runs against the database's :class:`~repro.clock.Clock`, so
tests and benchmarks drive temporal behaviour deterministically with a
:class:`~repro.clock.VirtualClock`.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.clock import Clock, TimerHandle
from repro.core.events import (
    AbsoluteEventSpec,
    EventSpec,
    MilestoneEventSpec,
    PeriodicEventSpec,
    PrimitiveEventSpec,
    RelativeEventSpec,
    TemporalEventSpec,
)
from repro.errors import EventDefinitionError
from repro.oodb.transactions import TransactionManager


class TemporalEventSource:
    """Schedules timers that raise temporal event occurrences."""

    def __init__(self, clock: Clock, tx_manager: TransactionManager,
                 dispatch: Callable[[TemporalEventSpec, dict], None],
                 anchor_subscribe: Callable[[PrimitiveEventSpec,
                                             Callable], None]):
        self.clock = clock
        self.tx_manager = tx_manager
        self._dispatch = dispatch
        self._anchor_subscribe = anchor_subscribe
        self._handles: list[TimerHandle] = []
        self._lock = threading.Lock()
        self.fired = {"absolute": 0, "relative": 0, "periodic": 0,
                      "milestone": 0}

    # ------------------------------------------------------------------

    def register(self, spec: TemporalEventSpec) -> None:
        """Install the timers (or anchor listeners) for ``spec``."""
        if isinstance(spec, AbsoluteEventSpec):
            self._register_absolute(spec)
        elif isinstance(spec, PeriodicEventSpec):
            self._register_periodic(spec)
        elif isinstance(spec, RelativeEventSpec):
            self._register_relative(spec)
        elif isinstance(spec, MilestoneEventSpec):
            pass  # milestones are armed per transaction via set_milestone
        else:
            raise EventDefinitionError(
                f"unknown temporal spec {type(spec).__name__!r}")

    def _remember(self, handle: TimerHandle) -> None:
        with self._lock:
            self._handles.append(handle)

    def _register_absolute(self, spec: AbsoluteEventSpec) -> None:
        def fire() -> None:
            self.fired["absolute"] += 1
            self._dispatch(spec, {"at": spec.at})
        self._remember(self.clock.schedule(spec.at, fire))

    def _register_periodic(self, spec: PeriodicEventSpec) -> None:
        state = {"occurrences": 0}
        first = spec.start if spec.start is not None \
            else self.clock.now() + spec.period

        def fire() -> None:
            now = self.clock.now()
            if spec.end is not None and now > spec.end:
                return
            state["occurrences"] += 1
            self.fired["periodic"] += 1
            self._dispatch(spec, {"occurrence_index": state["occurrences"],
                                  "at": now})
            if spec.count is not None and \
                    state["occurrences"] >= spec.count:
                return
            next_at = now + spec.period
            if spec.end is not None and next_at > spec.end:
                return
            self._remember(self.clock.schedule(next_at, fire))

        self._remember(self.clock.schedule(first, fire))

    def _register_relative(self, spec: RelativeEventSpec) -> None:
        if not isinstance(spec.anchor, PrimitiveEventSpec):
            raise EventDefinitionError(
                "relative temporal events anchor on primitive events")

        def on_anchor(anchor_occ: Any) -> None:
            deadline = anchor_occ.timestamp + spec.delay

            def fire() -> None:
                self.fired["relative"] += 1
                self._dispatch(spec, {"anchor_seq": anchor_occ.seq,
                                      "at": self.clock.now()})

            self._remember(self.clock.schedule(deadline, fire))

        self._anchor_subscribe(spec.anchor, on_anchor)

    # ------------------------------------------------------------------
    # Milestones (per transaction)
    # ------------------------------------------------------------------

    def arm_milestone(self, spec: MilestoneEventSpec, tx_id: int,
                      at: float) -> TimerHandle:
        """Raise the milestone event at ``at`` unless transaction ``tx_id``
        has finished by then.

        The milestone firing is the signal that the transaction is likely
        to miss its deadline; a rule on the milestone spec is the
        contingency plan.
        """
        def fire() -> None:
            if self.tx_manager.outcome_of(tx_id) is not None:
                return  # transaction already finished: milestone reached
            self.fired["milestone"] += 1
            self._dispatch(spec, {"tx_id": tx_id, "label": spec.label,
                                  "missed_at": at})

        handle = self.clock.schedule(at, fire)
        self._remember(handle)
        return handle

    # ------------------------------------------------------------------

    def schedule_recurring(self, interval: float,
                           fn: Callable[[], None]) -> None:
        """Run ``fn`` every ``interval`` seconds (used for composer GC)."""
        def tick() -> None:
            fn()
            self._remember(self.clock.schedule(
                self.clock.now() + interval, tick))

        self._remember(self.clock.schedule(
            self.clock.now() + interval, tick))

    def cancel_all(self) -> None:
        with self._lock:
            for handle in self._handles:
                handle.cancel()
            self._handles.clear()
