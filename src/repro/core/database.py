"""The REACH database facade: an integrated active OODBMS.

This is the public entry point wiring every subsystem together in the
configuration of Figure 1 + Section 6: the meta-architecture bus with the
persistence, transaction, change, indexing, query and REACH rule policy
managers plugged in; the sentry registry as the low-level event detector;
the event service with its ECA-managers and composers; the rule scheduler;
and the temporal event source.

Typical use::

    from repro import ReachDatabase, sentried
    from repro.core import MethodEventSpec, CouplingMode

    @sentried
    class River:
        def __init__(self):
            self.level = 50
        def update_water_level(self, x):
            self.level = x

    db = ReachDatabase()
    db.register_class(River)
    db.rule("WaterLevel",
            event=MethodEventSpec("River", "update_water_level",
                                  param_names=("x",)),
            condition=lambda ctx: ctx["x"] < 37,
            action=lambda ctx: print("reduce planned power"),
            coupling=CouplingMode.IMMEDIATE, priority=5)

    river = River()
    with db.transaction():
        db.persist(river, "Rhein")
        river.update_water_level(30)   # fires WaterLevel
"""

from __future__ import annotations

import os
import tempfile
import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional, Type, Union

from repro.clock import Clock, VirtualClock
from repro.config import ExecutionConfig
from repro.core.algebra import CompositeEventSpec
from repro.core.coupling import CouplingMode, check_supported
from repro.core.eca_manager import (
    EventService,
    ReachRulePolicyManager,
)
from repro.core.events import (
    EventSpec,
    MilestoneEventSpec,
    SignalEventSpec,
    TemporalEventSpec,
)
from repro.core.rule_builder import RuleBuilder
from repro.core.rules import Action, Condition, Rule
from repro.core.scheduler import RuleScheduler
from repro.core.temporal import TemporalEventSource
from repro.errors import RuleDefinitionError
from repro.oodb.address_space import ActiveAddressSpace, PassiveAddressSpace
from repro.oodb.change import ChangePolicyManager
from repro.oodb.data_dictionary import DataDictionary
from repro.oodb.indexing import HashIndex, IndexPolicyManager
from repro.oodb.locks import LockManager
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Trace, Tracer
from repro.oodb.meta import (
    MetaArchitecture,
    PolicyManager,
    SupportModule,
)
from repro.oodb.oid import OID
from repro.oodb.persistence import PersistencePolicyManager
from repro.oodb.query import QueryProcessor
from repro.oodb.sentry import registry as default_sentry_registry
from repro.oodb.transactions import Transaction, TransactionManager


class TransactionPolicyManager(PolicyManager):
    """Thin wrapper giving the transaction manager a Figure 1 presence."""

    name = "Transaction PM (flat + closed nested)"
    subscribed_kinds = ()

    def __init__(self, tx_manager: TransactionManager):
        super().__init__()
        self.tx_manager = tx_manager

    def describe(self) -> str:
        stats = self.tx_manager.stats
        return (f"{self.name} ({stats['begun']} begun, "
                f"{stats['committed']} committed, "
                f"{stats['aborted']} aborted)")


class _NamedSupportModule(SupportModule):
    def __init__(self, name: str):
        self.name = name


class ReachDatabase:
    """An integrated active OODBMS instance.

    Args:
        directory: storage directory; ``None`` uses a fresh temporary
            directory (transient database).
        config: execution configuration (synchronous by default).
        clock: time source; defaults to a deterministic
            :class:`~repro.clock.VirtualClock`.
        buffer_capacity: buffer-pool frames for the storage manager.
    """

    def __init__(self, directory: Optional[str] = None,
                 config: Optional[ExecutionConfig] = None,
                 clock: Optional[Clock] = None,
                 buffer_capacity: int = 128):
        from repro.storage.storage_manager import StorageManager

        self.config = config or ExecutionConfig()
        self.clock = clock or VirtualClock()
        if directory is None:
            directory = tempfile.mkdtemp(prefix="reach-db-")
        self.directory = directory

        # -- observability (repro.obs) -----------------------------------
        # Built first so every subsystem can bind its instruments at
        # construction; both are inert null-object pipelines unless
        # ``config.observability`` is set.
        self.metrics_registry = MetricsRegistry(
            enabled=self.config.observability)
        self.tracer = Tracer(enabled=self.config.observability,
                             capacity=self.config.trace_capacity)
        if self.config.observability:
            # The sentry registry is process-wide; only an enabled
            # database claims its delivery counter (last one wins).
            default_sentry_registry.attach_metrics(self.metrics_registry)

        # -- meta-architecture and support modules (Figure 1) ------------
        self.meta = MetaArchitecture()
        self.locks = LockManager(metrics=self.metrics_registry)
        self.tx_manager = TransactionManager(self.meta, self.locks,
                                             clock=self.clock,
                                             tracer=self.tracer,
                                             metrics=self.metrics_registry)
        self.storage = StorageManager(directory,
                                      buffer_capacity=buffer_capacity,
                                      metrics=self.metrics_registry)
        self.dictionary = DataDictionary()
        self.active_space = ActiveAddressSpace()
        self.passive_space = PassiveAddressSpace(self.storage)
        self.meta.add_support_module(self.active_space)
        self.meta.add_support_module(self.passive_space)
        self.meta.add_support_module(self.dictionary)
        self.meta.add_support_module(
            _NamedSupportModule("translation (swizzling serializer)"))
        self.meta.add_support_module(
            _NamedSupportModule("communications (in-process)"))

        # -- policy managers ----------------------------------------------
        # Plug order matters: persistence (dirty marking) and indexing see
        # state changes before the rule PM fires rules on them.
        self.persistence = self.meta.plug(PersistencePolicyManager(
            self.dictionary, self.active_space, self.passive_space,
            self.tx_manager))
        self.change = self.meta.plug(ChangePolicyManager(
            self.tx_manager, persistence=self.persistence,
            sentry_registry=default_sentry_registry))
        self.indexes = self.meta.plug(IndexPolicyManager(
            self.dictionary, self.tx_manager,
            persistence=self.persistence))
        self.query_processor = self.meta.plug(QueryProcessor(
            self.dictionary, self.persistence,
            index_manager=self.indexes))
        self.meta.plug(TransactionPolicyManager(self.tx_manager))

        # -- REACH ----------------------------------------------------------
        self.scheduler = RuleScheduler(self, self.tx_manager, self.config,
                                       tracer=self.tracer,
                                       metrics=self.metrics_registry)
        self.events = EventService(
            self.meta, self.tx_manager, self.scheduler,
            default_sentry_registry, self.clock, self.config,
            resolve_class=self.dictionary.type_named,
            tracer=self.tracer, metrics=self.metrics_registry)
        self.rule_pm = self.meta.plug(ReachRulePolicyManager(
            self.events, self.scheduler))
        self.temporal = TemporalEventSource(
            self.clock, self.tx_manager,
            dispatch=self.events.dispatch_temporal,
            anchor_subscribe=self._subscribe_anchor)
        self.temporal.schedule_recurring(self.config.gc_interval,
                                         self.events.collect_garbage)

        # Pull-based queue-depth gauges: evaluated only when a metrics
        # snapshot is taken, never on the detection path.
        self.metrics_registry.gauge_fn(
            "scheduler.detached.depth",
            self.scheduler.pending_detached_count)
        self.metrics_registry.gauge_fn(
            "scheduler.deferred.depth",
            self.tx_manager.pending_deferred_count)
        self.metrics_registry.gauge_fn(
            "composer.semi_composed.pending",
            self.events.pending_semi_composed)

        self._rules: dict[str, tuple[Rule, Any]] = {}
        self._closed = False
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------

    def register_class(self, cls: Type, monitor_state: bool = True) -> Type:
        """Register an application class with the data dictionary and
        begin monitoring its state changes.

        The class should be decorated with
        :func:`~repro.oodb.sentry.sentried`; monitoring is orthogonal to
        persistence (Section 6.1).
        """
        self.dictionary.register_type(cls)
        if monitor_state:
            self.change.monitor(cls)
        return cls

    def create_index(self, cls_or_name: Union[Type, str],
                     attribute: str) -> HashIndex:
        name = cls_or_name if isinstance(cls_or_name, str) \
            else cls_or_name.__name__
        return self.indexes.create_index(name, attribute)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    @contextmanager
    def transaction(self, nested: Optional[bool] = None,
                    deadline: Optional[float] = None) -> Iterator[Transaction]:
        with self.tx_manager.transaction(nested=nested,
                                         deadline=deadline) as tx:
            yield tx

    def begin(self, nested: Optional[bool] = None,
              deadline: Optional[float] = None) -> Transaction:
        return self.tx_manager.begin(nested=nested, deadline=deadline)

    def commit(self, tx: Optional[Transaction] = None) -> None:
        self.tx_manager.commit(tx)

    def abort(self, tx: Optional[Transaction] = None) -> None:
        self.tx_manager.abort(tx)

    def current_transaction(self) -> Optional[Transaction]:
        return self.tx_manager.current()

    # ------------------------------------------------------------------
    # Objects and queries
    # ------------------------------------------------------------------

    def persist(self, obj: Any, name: Optional[str] = None) -> OID:
        if not self.dictionary.has_type(type(obj).__name__):
            self.register_class(type(obj))
        return self.persistence.persist(obj, name)

    def fetch(self, target: Union[str, OID]) -> Any:
        return self.persistence.fetch(target)

    def delete(self, target: Union[str, OID, Any]) -> None:
        self.persistence.delete(target)

    def query(self, text: str, **params: Any) -> list[Any]:
        """Run an OQL-subset query, e.g.
        ``db.query("select x from River x where x.level < limit", limit=37)``.
        """
        return self.query_processor.execute(text, env=params)

    def flush(self) -> None:
        """Flush dirty persistent state outside a user transaction."""
        self.persistence.flush_now()

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    def rule(self, name: str, event: EventSpec,
             action: Optional[Action] = None,
             condition: Optional[Condition] = None,
             condition_query: Optional[str] = None,
             coupling: CouplingMode = CouplingMode.IMMEDIATE,
             cond_coupling: Optional[CouplingMode] = None,
             action_coupling: Optional[CouplingMode] = None,
             priority: int = 0, critical: bool = False,
             enabled: bool = True, transfer_locks: bool = False,
             description: str = "") -> Rule:
        """Define and register one ECA rule.

        The (event category, coupling mode) combination is validated
        against Table 1 for both the condition and the action coupling;
        unsupported combinations raise
        :class:`~repro.errors.UnsupportedCouplingError` here, at
        definition time.
        """
        rule = Rule(name=name, event=event, action=action,
                    condition=condition, condition_query=condition_query,
                    coupling=coupling, cond_coupling=cond_coupling,
                    action_coupling=action_coupling, priority=priority,
                    critical=critical, enabled=enabled,
                    transfer_locks=transfer_locks,
                    description=description)
        return self.register_rule(rule)

    def on(self, event: EventSpec) -> RuleBuilder:
        """Start a fluent rule definition::

            db.on(MethodEventSpec("River", "update_water_level",
                                  param_names=("x",))) \\
              .when(lambda ctx: ctx["x"] < 37) \\
              .do(lambda ctx: reduce_power(ctx)) \\
              .coupling(CouplingMode.IMMEDIATE) \\
              .named("WaterLevel")

        Nothing is registered until the terminal ``.named(name)`` call,
        which delegates to :meth:`rule` and returns the
        :class:`~repro.core.rules.Rule`.
        """
        return RuleBuilder(self, event)

    def register_rule(self, rule: Rule) -> Rule:
        with self._lock:
            if rule.name in self._rules:
                raise RuleDefinitionError(
                    f"a rule named {rule.name!r} already exists")
            category = rule.event.category()
            check_supported(rule.cond_coupling, category, rule.name)
            check_supported(rule.action_coupling, category, rule.name)
            manager = self._manager_for(rule.event)
            manager.add_rule(rule)
            self._rules[rule.name] = (rule, manager)
            return rule

    def _manager_for(self, spec: EventSpec):
        if isinstance(spec, CompositeEventSpec):
            manager = self.events.composite_manager(spec)
            for leaf in spec.leaves():
                if isinstance(leaf, TemporalEventSpec):
                    self.temporal.register(leaf)
            return manager
        manager = self.events.primitive_manager(spec)
        if isinstance(spec, TemporalEventSpec):
            self.temporal.register(spec)
        return manager

    def _subscribe_anchor(self, spec, callback) -> None:
        self.events.primitive_manager(spec).add_listener(callback)

    def define_rules(self, ddl: str, persist: bool = False) -> list[Rule]:
        """Parse REACH rule DDL (the paper's textual syntax, Section 6.1)
        and register every rule found.

        With ``persist=True`` the DDL text is stored in the catalog —
        REACH's "rules are objects too" — and recompiled on the next open
        by :meth:`load_persistent_rules`.
        """
        from repro.core.rule_language import compile_rules
        rules = compile_rules(ddl, self)
        for rule in rules:
            self.register_rule(rule)
        if persist:
            self.dictionary.add_rule_ddl(ddl)
            if self.tx_manager.current() is None:
                self.persistence.flush_now()
        return rules

    def load_persistent_rules(self) -> list[Rule]:
        """Recompile and register every rule-DDL block stored in the
        catalog.  Application classes referenced by the rules must be
        registered first.  Already-registered rule names are skipped."""
        from repro.core.rule_language import compile_rules
        loaded: list[Rule] = []
        for ddl in self.dictionary.rule_ddl_blocks():
            for rule in compile_rules(ddl, self):
                if rule.name in self._rules:
                    continue
                self.register_rule(rule)
                loaded.append(rule)
        return loaded

    def drop_rule(self, name: str) -> None:
        with self._lock:
            rule, manager = self._rules.pop(name)
            manager.remove_rule(rule)

    def get_rule(self, name: str) -> Rule:
        return self._rules[name][0]

    def rules(self) -> list[Rule]:
        with self._lock:
            return [rule for rule, __ in self._rules.values()]

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def signal(self, name: str, **parameters: Any) -> None:
        """Raise an explicit user signal (modelled as a method event)."""
        spec = SignalEventSpec(name)
        self.events.emit(spec, parameters)

    def set_milestone(self, label: str, at: float,
                      tx: Optional[Transaction] = None) -> None:
        """Arm a milestone: if the transaction has not finished by ``at``,
        the milestone event fires and its rules (the contingency plan)
        run detached."""
        tx = tx or self.tx_manager.require_current()
        spec = MilestoneEventSpec(label)
        self.events.primitive_manager(spec)
        self.temporal.arm_milestone(spec, tx.top_level().id, at)

    def arm_progress_milestones(self, label: str,
                                fractions: tuple[float, ...] = (0.5, 0.8),
                                tx: Optional[Transaction] = None) -> list[str]:
        """Track a deadline transaction's progress (paper, Section 3.1).

        For each fraction f, arms the milestone ``"{label}@{f}"`` at
        ``begin + f * (deadline - begin)``.  Requires the transaction to
        have been begun with a ``deadline``.  Returns the milestone labels
        so contingency rules can be attached per checkpoint.
        """
        tx = tx or self.tx_manager.require_current()
        top = tx.top_level()
        if top.deadline is None:
            raise RuleDefinitionError(
                "progress milestones require a transaction deadline")
        labels = []
        span = top.deadline - top.begin_time
        for fraction in fractions:
            if not 0 < fraction <= 1:
                raise ValueError("fractions must be in (0, 1]")
            milestone_label = f"{label}@{fraction}"
            self.set_milestone(milestone_label,
                               at=top.begin_time + fraction * span, tx=top)
            labels.append(milestone_label)
        return labels

    def drain_detached(self) -> int:
        """Synchronous mode: run detached work whose dependencies are
        decided."""
        return self.scheduler.drain_detached()

    def wait_for_composition(self, timeout: float = 10.0) -> None:
        self.events.wait_for_composition(timeout)

    def collect_garbage(self) -> int:
        return self.events.collect_garbage()

    @property
    def history(self):
        """The merged global event history (Section 6.3)."""
        return self.events.global_history

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    def architecture_inventory(self) -> dict[str, list[str]]:
        """The Figure 1 view: plugged policy managers + support modules."""
        return self.meta.inventory()

    # -- observability ---------------------------------------------------

    def metrics(self) -> MetricsRegistry:
        """The database's metrics registry (null instruments when
        ``config.observability`` is off)."""
        return self.metrics_registry

    def trace(self, trace_id: Optional[int] = None) -> Optional[Trace]:
        """The most recent trace, or the trace with ``trace_id``.

        ``None`` when tracing is disabled or nothing has been recorded.
        Each :class:`~repro.obs.tracer.Trace` is the span tree of one
        sentried call: detection, ECA dispatch, composition, rule firings
        and their commits.
        """
        return self.tracer.trace(trace_id)

    def traces(self) -> list[Trace]:
        """Every retained trace, oldest first."""
        return self.tracer.traces()

    def dump_observability(self, json_format: bool = False) -> str:
        """Text (default) or JSON dump of metrics plus retained traces."""
        if json_format:
            import json as _json
            return _json.dumps({
                "metrics": self.metrics_registry.snapshot(),
                "traces": [trace.to_dict() for trace in self.traces()],
            }, indent=2)
        parts = [self.metrics_registry.dump_text()]
        for trace in self.traces():
            parts.append(trace.format())
        return "\n\n".join(parts)

    #: The frozen top-level key set of :meth:`statistics`.  Every key is
    #: present from construction onward; additions require a new entry
    #: here (tests assert equality, catching accidental drift).
    STATISTICS_KEYS = frozenset({
        "transactions", "scheduler", "events", "events_detected",
        "semi_composed_pending", "composers", "eca_managers", "storage",
        "rules", "queries", "observability",
    })

    def statistics(self) -> dict[str, Any]:
        """A consistent snapshot of every subsystem's counters.

        The key set is exactly :attr:`STATISTICS_KEYS`, and every value is
        well-defined before the first transaction (zeros/empty sections).
        All values come from always-maintained plain attributes, so they
        are correct whether or not ``config.observability`` is enabled;
        the ``observability`` section carries the metrics snapshot (null
        when disabled).

        Keys:

        * ``transactions`` — begun/committed/aborted counts;
        * ``scheduler`` — firing counts per policy (immediate,
          deferred_enqueued, deferred_run, detached_run, ...);
        * ``events`` — detected/composed/consumed plus pending
          semi-composed occurrences;
        * ``events_detected``, ``semi_composed_pending`` — flat aliases
          retained for backward compatibility;
        * ``composers`` — composer count, emissions, live graph instances;
        * ``eca_managers`` — primitive/composite manager counts and
          occurrences handled;
        * ``storage`` — pages, WAL and buffer-pool counters;
        * ``rules`` — registered rule count;
        * ``queries`` — query-processor counters;
        * ``observability`` — ``metrics().snapshot()``.
        """
        composers = self.events.composers()
        primitive = self.events.primitive_managers()
        composite = self.events.composite_managers()
        return {
            "transactions": dict(self.tx_manager.stats),
            "scheduler": dict(self.scheduler.stats),
            "events": {
                "detected": self.events.events_detected,
                "composed": sum(c.emitted for c in composers),
                "consumed": sum(c.consumed for c in composers),
                "semi_composed_pending":
                    self.events.pending_semi_composed(),
            },
            "events_detected": self.events.events_detected,
            "semi_composed_pending": self.events.pending_semi_composed(),
            "composers": {
                "count": len(composers),
                "emitted": sum(c.emitted for c in composers),
                "graph_instances":
                    sum(c.graph_instance_count() for c in composers),
            },
            "eca_managers": {
                "primitive": len(primitive),
                "composite": len(composite),
                "handled": sum(m.handled for m in primitive)
                + sum(m.handled for m in composite),
            },
            "storage": self.storage.stats(),
            "rules": len(self._rules),
            "queries": dict(self.query_processor.stats),
            "observability": self.metrics_registry.snapshot(),
        }

    def checkpoint(self) -> None:
        self.storage.checkpoint()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.temporal.cancel_all()
        try:
            # Give resolvable detached work a last chance to run rather
            # than silently dropping it (synchronous mode).
            self.scheduler.drain_detached()
        except Exception:
            pass
        self.scheduler.close()
        self.events.close()
        self.change.close()
        self.storage.close()

    def __enter__(self) -> "ReachDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
