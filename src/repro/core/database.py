"""The REACH database facade: an integrated active OODBMS.

Since the engine/session split this module is a thin, fully
backwards-compatible convenience layer: a :class:`ReachDatabase` is one
:class:`~repro.core.engine.ReachEngine` (which owns every process-wide
subsystem in the configuration of Figure 1 + Section 6) plus one default
:class:`~repro.core.session.Session` serving the classic embedded,
one-client style of use.  Every subsystem attribute the facade used to
own (``db.tx_manager``, ``db.scheduler``, ``db.events``, ...) is still
reachable here — they are the engine's.

Typical use::

    from repro import ReachDatabase, sentried
    from repro.core import MethodEventSpec, CouplingMode

    @sentried
    class River:
        def __init__(self):
            self.level = 50
        def update_water_level(self, x):
            self.level = x

    db = ReachDatabase()
    db.register_class(River)
    db.rule("WaterLevel",
            event=MethodEventSpec("River", "update_water_level",
                                  param_names=("x",)),
            condition=lambda ctx: ctx["x"] < 37,
            action=lambda ctx: print("reduce planned power"),
            coupling=CouplingMode.IMMEDIATE, priority=5)

    river = River()
    with db.transaction():
        db.persist(river, "Rhein")
        river.update_water_level(30)   # fires WaterLevel

For concurrent clients, open additional sessions over the same engine::

    with db.create_session("client-42") as session:
        with session.transaction():
            session.fetch("Rhein").update_water_level(30)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional, Type, Union

from repro.clock import Clock
from repro.config import ExecutionConfig
from repro.core.coupling import CouplingMode
from repro.core.engine import (  # noqa: F401  (re-exported for compat)
    ReachEngine,
    TransactionPolicyManager,
    _NamedSupportModule,
)
from repro.core.events import EventSpec
from repro.core.rule_builder import RuleBuilder
from repro.core.rules import Action, Condition, Rule
from repro.core.session import Session
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Trace, Tracer  # noqa: F401  (compat)
from repro.oodb.indexing import HashIndex
from repro.oodb.oid import OID
from repro.oodb.transactions import Transaction


class ReachDatabase:
    """An integrated active OODBMS instance (facade).

    Args:
        directory: storage directory; ``None`` uses a fresh temporary
            directory (transient database).
        config: execution configuration (synchronous by default).
        clock: time source; defaults to a deterministic
            :class:`~repro.clock.VirtualClock`.
        buffer_capacity: buffer-pool frames for the storage manager.
        engine: serve an existing engine instead of building one —
            ``directory``/``config``/``clock``/``buffer_capacity`` must
            then be omitted.

    With ``config.sharding.shards > 1`` the facade builds a
    :class:`~repro.core.sharding.ShardedEngine` instead of a single
    kernel: the default session becomes a
    :class:`~repro.core.session.ShardedSession` (``db.transaction()``
    begins one member per shard), single-object subsystem attributes
    (``db.tx_manager``, ``db.storage``, ...) refer to shard 0, and
    ``db.statistics()["shards"]`` carries the per-shard topology.
    """

    def __init__(self, directory: Optional[str] = None,
                 config: Optional[ExecutionConfig] = None,
                 clock: Optional[Clock] = None,
                 buffer_capacity: int = 128,
                 engine: Optional[Any] = None):
        if engine is not None:
            if directory is not None or config is not None \
                    or clock is not None:
                raise ValueError(
                    "pass either an engine or construction arguments, "
                    "not both")
            self.engine = engine
        elif config is not None and config.sharding.shards > 1:
            from repro.core.sharding import ShardedEngine
            self.engine = ShardedEngine(directory=directory, config=config,
                                        clock=clock,
                                        buffer_capacity=buffer_capacity)
        else:
            self.engine = ReachEngine(directory=directory, config=config,
                                      clock=clock,
                                      buffer_capacity=buffer_capacity)
        #: the implicit session serving the classic embedded API.  It is
        #: thread-affine: ``db.begin()`` / ``db.transaction()`` keep their
        #: historical per-thread transaction stacks, so existing
        #: multi-threaded callers are unaffected.  (A sharded engine
        #: ignores ``thread_affine`` — its sessions always own explicit
        #: per-shard contexts.)
        self.default_session = self.engine.create_session(
            name="default", thread_affine=True)

        # Subsystem attributes stay addressable on the facade — a large
        # body of callers (and tests) reaches for ``db.tx_manager`` etc.
        # They are plain references to the engine's objects.
        eng = self.engine
        self.config = eng.config
        self.clock = eng.clock
        self.directory = eng.directory
        self.metrics_registry = eng.metrics_registry
        self.faults = eng.faults
        self.tracer = eng.tracer
        self.flight = eng.flight
        self.telemetry_pipeline = eng.telemetry_pipeline
        self.sentry_registry = eng.sentry_registry
        self.meta = eng.meta
        self.locks = eng.locks
        self.tx_manager = eng.tx_manager
        self.storage = eng.storage
        self.dictionary = eng.dictionary
        self.active_space = eng.active_space
        self.passive_space = eng.passive_space
        self.persistence = eng.persistence
        self.change = eng.change
        self.indexes = eng.indexes
        self.query_processor = eng.query_processor
        self.scheduler = eng.scheduler
        self.events = eng.events
        self.rule_pm = eng.rule_pm
        self.temporal = eng.temporal
        self._rules = eng._rules

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def create_session(self, name: Optional[str] = None) -> Session:
        """Open an additional client session over this database's engine
        (see :class:`~repro.core.session.Session`)."""
        return self.engine.create_session(name)

    def sessions(self) -> list[Session]:
        return self.engine.sessions()

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------

    def register_class(self, cls: Type, monitor_state: bool = True) -> Type:
        """Register an application class with the data dictionary and
        begin monitoring its state changes (see
        :meth:`ReachEngine.register_class`)."""
        return self.engine.register_class(cls, monitor_state=monitor_state)

    def create_index(self, cls_or_name: Union[Type, str],
                     attribute: str) -> HashIndex:
        return self.engine.create_index(cls_or_name, attribute)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    @contextmanager
    def transaction(self, nested: Optional[bool] = None,
                    deadline: Optional[float] = None) -> Iterator[Transaction]:
        """``with db.transaction() as tx:`` in the default session —
        commits on success, aborts on exception, and binds this engine's
        event scope for the body."""
        with self.default_session.transaction(nested=nested,
                                              deadline=deadline) as tx:
            yield tx

    def begin(self, nested: Optional[bool] = None,
              deadline: Optional[float] = None) -> Transaction:
        return self.tx_manager.begin(nested=nested, deadline=deadline)

    def commit(self, tx: Optional[Transaction] = None) -> None:
        self.tx_manager.commit(tx)

    def abort(self, tx: Optional[Transaction] = None) -> None:
        self.tx_manager.abort(tx)

    def current_transaction(self) -> Optional[Transaction]:
        return self.tx_manager.current()

    # ------------------------------------------------------------------
    # Objects and queries
    # ------------------------------------------------------------------

    def persist(self, obj: Any, name: Optional[str] = None) -> OID:
        return self.engine.persist(obj, name)

    def fetch(self, target: Union[str, OID]) -> Any:
        return self.engine.fetch(target)

    def delete(self, target: Union[str, OID, Any]) -> None:
        self.engine.delete(target)

    def query(self, text: str, **params: Any) -> list[Any]:
        """Run an OQL-subset query, e.g.
        ``db.query("select x from River x where x.level < limit", limit=37)``.
        """
        return self.engine.query(text, **params)

    def flush(self) -> None:
        """Flush dirty persistent state outside a user transaction."""
        self.engine.flush()

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    def rule(self, name: str, event: EventSpec,
             action: Optional[Action] = None,
             condition: Optional[Condition] = None,
             condition_query: Optional[str] = None,
             coupling: CouplingMode = CouplingMode.IMMEDIATE,
             cond_coupling: Optional[CouplingMode] = None,
             action_coupling: Optional[CouplingMode] = None,
             priority: int = 0, critical: bool = False,
             enabled: bool = True, transfer_locks: bool = False,
             description: str = "") -> Rule:
        """Define and register one ECA rule (see
        :meth:`ReachEngine.rule`)."""
        return self.engine.rule(
            name, event, action=action, condition=condition,
            condition_query=condition_query, coupling=coupling,
            cond_coupling=cond_coupling, action_coupling=action_coupling,
            priority=priority, critical=critical, enabled=enabled,
            transfer_locks=transfer_locks, description=description)

    def on(self, event: EventSpec) -> RuleBuilder:
        """Start a fluent rule definition::

            db.on(MethodEventSpec("River", "update_water_level",
                                  param_names=("x",))) \\
              .when(lambda ctx: ctx["x"] < 37) \\
              .do(lambda ctx: reduce_power(ctx)) \\
              .coupling(CouplingMode.IMMEDIATE) \\
              .named("WaterLevel")

        Nothing is registered until the terminal ``.named(name)`` call,
        which delegates to :meth:`rule` and returns the
        :class:`~repro.core.rules.Rule`.
        """
        return self.engine.on(event)

    def register_rule(self, rule: Rule) -> Rule:
        return self.engine.register_rule(rule)

    def define_rules(self, ddl: str, persist: bool = False) -> list[Rule]:
        """Parse REACH rule DDL and register every rule found (see
        :meth:`ReachEngine.define_rules`)."""
        return self.engine.define_rules(ddl, persist=persist)

    def load_persistent_rules(self) -> list[Rule]:
        """Recompile and register every rule-DDL block stored in the
        catalog (see :meth:`ReachEngine.load_persistent_rules`)."""
        return self.engine.load_persistent_rules()

    def drop_rule(self, name: str) -> None:
        self.engine.drop_rule(name)

    def get_rule(self, name: str) -> Rule:
        return self.engine.get_rule(name)

    def rules(self) -> list[Rule]:
        return self.engine.rules()

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def signal(self, name: str, **parameters: Any) -> None:
        """Raise an explicit user signal (modelled as a method event)."""
        self.engine.signal(name, **parameters)

    def set_milestone(self, label: str, at: float,
                      tx: Optional[Transaction] = None) -> None:
        """Arm a milestone (see :meth:`ReachEngine.set_milestone`)."""
        self.engine.set_milestone(label, at, tx=tx)

    def arm_progress_milestones(self, label: str,
                                fractions: tuple[float, ...] = (0.5, 0.8),
                                tx: Optional[Transaction] = None) -> list[str]:
        """Track a deadline transaction's progress (see
        :meth:`ReachEngine.arm_progress_milestones`)."""
        return self.engine.arm_progress_milestones(label, fractions=fractions,
                                                   tx=tx)

    def drain_detached(self) -> int:
        """Synchronous mode: run detached work whose dependencies are
        decided."""
        return self.engine.drain_detached()

    def dead_letters(self) -> list[Any]:
        """Detached work that failed permanently (retries exhausted or the
        rule quarantined), newest last."""
        return self.engine.dead_letters()

    def requeue(self, index: Optional[int] = None) -> int:
        """Re-execute dead-lettered work (all of it, or one entry by
        index) with a fresh retry budget; returns the number requeued."""
        return self.engine.requeue(index)

    def wait_for_composition(self, timeout: float = 10.0) -> None:
        self.engine.wait_for_composition(timeout)

    def collect_garbage(self) -> int:
        return self.engine.collect_garbage()

    @property
    def history(self):
        """The merged global event history (Section 6.3)."""
        return self.engine.history

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    def architecture_inventory(self) -> dict[str, list[str]]:
        """The Figure 1 view: plugged policy managers + support modules."""
        return self.engine.architecture_inventory()

    def metrics(self) -> MetricsRegistry:
        """The database's metrics registry (null instruments when
        ``config.observability`` is off)."""
        return self.engine.metrics()

    def trace(self, trace_id: Optional[int] = None) -> Optional[Trace]:
        """The most recent trace, or the trace with ``trace_id`` (see
        :meth:`ReachEngine.trace`)."""
        return self.engine.trace(trace_id)

    def traces(self) -> list[Trace]:
        """Every retained trace, oldest first."""
        return self.engine.traces()

    def flight_recorder(self):
        """The always-on flight recorder (see
        :class:`~repro.obs.flight.FlightRecorder`); ``dump()`` writes the
        ring to ``<dbdir>/flight/`` on demand."""
        return self.engine.flight_recorder()

    def telemetry(self):
        """The telemetry export pipeline (see
        :class:`~repro.obs.export.TelemetryPipeline`)."""
        return self.engine.telemetry()

    @property
    def admin_address(self) -> Optional[tuple[str, int]]:
        """``(host, port)`` of the live admin endpoint, or ``None``."""
        return self.engine.admin_address

    def dump_observability(self, json_format: bool = False) -> str:
        """Text (default) or JSON dump of metrics, retained traces,
        faults, dead letters, quarantined rules and the flight snapshot
        (see :meth:`ReachEngine.dump_observability`)."""
        return self.engine.dump_observability(json_format=json_format)

    #: see :attr:`ReachEngine.STATISTICS_KEYS` — the facade's statistics
    #: are the engine's.
    STATISTICS_KEYS = ReachEngine.STATISTICS_KEYS

    #: see :attr:`ReachEngine.CONCURRENCY_STATS_KEYS`.
    CONCURRENCY_STATS_KEYS = ReachEngine.CONCURRENCY_STATS_KEYS

    def statistics(self) -> dict[str, Any]:
        """A consistent snapshot of every subsystem's counters (see
        :meth:`ReachEngine.statistics` for the key-by-key contract)."""
        return self.engine.statistics()

    def concurrency_stats(self) -> dict[str, Any]:
        """The curated concurrency introspection surface: striped lock
        waits, WAL group commit, history merge lag, effective knobs (see
        :meth:`ReachEngine.concurrency_stats` for the key-by-key
        contract)."""
        return self.engine.concurrency_stats()

    def wal_statistics(self) -> dict[str, Any]:
        """The ``statistics()["wal"]`` section on its own: framing and
        recovery counters plus the durable-composer-checkpoint gauges
        (see :meth:`ReachEngine.wal_statistics`)."""
        return self.engine.wal_statistics()

    def composer_stats(self) -> dict[str, Any]:
        """The durable-detection-state view served at ``/composer``:
        per-composer half-matched group counts, restore/fallback
        counters and the last checkpoint LSN (see
        :meth:`ReachEngine.composer_stats`)."""
        return self.engine.composer_stats()

    def checkpoint(self) -> None:
        self.engine.checkpoint()

    @property
    def closed(self) -> bool:
        return self.engine.closed

    def close(self) -> None:
        """Shut the underlying engine down (idempotent): timers
        cancelled, detached pool stopped, buffer pool flushed and closed.
        """
        self.engine.close()

    def __enter__(self) -> "ReachDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Delegate so an exception unwinding the facade scope dumps the
        # flight ring exactly like one unwinding the engine scope.
        self.engine.__exit__(exc_type, exc, tb)
