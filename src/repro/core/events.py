"""Primitive event specifications and event occurrences.

REACH recognizes primitive events of four flavours (paper, Section 3.1):

* **method-invocation events** — before/after an arbitrary method of a
  monitored class (detected by the sentry); explicit user signals are
  modelled as method-invocation events;
* **state-change events** — attribute writes (our virtual-memory-fault
  analog traps ``__setattr__``);
* **flow-control events** — transaction-related: BOT, EOT, Commit, Abort,
  plus DB-internal operations such as persist, fetch and delete;
* **temporal events** — absolute, relative (anchored on another event),
  periodic, and the special *milestone* events used for time-constrained
  processing.

An :class:`EventSpec` is the *specification* (what to watch for); an
:class:`EventOccurrence` is one detected instance, carrying its timestamp,
the originating top-level transaction ids, and parameter bindings.  The
four *categories* of Table 1 (single method, purely temporal, composite
single-transaction, composite multi-transaction) are computed from specs
and attached to occurrences so the coupling-mode rules can be enforced.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

from repro.errors import EventDefinitionError
from repro.oodb.sentry import Moment

__all__ = [
    "EventCategory", "EventSpec", "PrimitiveEventSpec", "MethodEventSpec",
    "StateChangeEventSpec", "FlowEventKind", "FlowEventSpec",
    "TemporalEventSpec", "AbsoluteEventSpec", "RelativeEventSpec",
    "PeriodicEventSpec", "MilestoneEventSpec", "SignalEventSpec",
    "EventOccurrence", "Moment", "advance_occurrence_seq",
]


class EventCategory(enum.Enum):
    """The four event kinds of Table 1."""

    SINGLE_METHOD = "single method"
    PURELY_TEMPORAL = "purely temporal"
    COMPOSITE_SINGLE_TX = "composite 1 TX"
    COMPOSITE_MULTI_TX = "composite n TXs"

    @property
    def is_composite(self) -> bool:
        return self in (EventCategory.COMPOSITE_SINGLE_TX,
                        EventCategory.COMPOSITE_MULTI_TX)


class EventSpec:
    """Base class for event specifications.

    Composite-building operators (usable on every spec):

    * ``a >> b`` — :class:`~repro.core.algebra.Sequence` (a then b)
    * ``a & b`` — :class:`~repro.core.algebra.Conjunction` (both, any order)
    * ``a | b`` — :class:`~repro.core.algebra.Disjunction` (either)
    """

    def key(self) -> Hashable:
        """Dispatch identity; equal keys mean 'the same event type'."""
        raise NotImplementedError

    def leaves(self) -> list["PrimitiveEventSpec"]:
        """All primitive specs at the leaves of this (sub)tree."""
        raise NotImplementedError

    def category(self) -> EventCategory:
        raise NotImplementedError

    def effective_validity(self) -> Optional[float]:
        """The validity interval bounding semi-composed lifetimes."""
        return None

    def describe(self) -> str:
        return repr(self)

    # -- composite-building sugar (implemented in algebra to avoid cycles) --

    def __rshift__(self, other: "EventSpec"):
        from repro.core.algebra import Sequence
        return Sequence(self, other)

    def __and__(self, other: "EventSpec"):
        from repro.core.algebra import Conjunction
        return Conjunction(self, other)

    def __or__(self, other: "EventSpec"):
        from repro.core.algebra import Disjunction
        return Disjunction(self, other)


@dataclass(frozen=True)
class PrimitiveEventSpec(EventSpec):
    """Common base for the primitive flavours."""

    def leaves(self) -> list["PrimitiveEventSpec"]:
        return [self]

    @property
    def is_temporal(self) -> bool:
        return False


@dataclass(frozen=True)
class MethodEventSpec(PrimitiveEventSpec):
    """Invocation of ``class_name.method`` — the paper's core event.

    ``moment`` selects detection before or after the method body, matching
    the rule DDL's ``event after river->updateWaterLevel(x)``.
    ``param_names`` optionally bind the method's positional arguments to
    variable names usable in rule conditions (the ``(x)`` above).
    """

    class_name: str
    method: str
    moment: Moment = Moment.AFTER
    param_names: tuple[str, ...] = ()
    #: optional variable name the receiving instance is bound to in rule
    #: contexts (the DDL's ``decl River river ... event after river.m()``).
    instance_binding: Optional[str] = None

    def key(self) -> Hashable:
        # Detection identity only: parameter names and instance bindings
        # are per-rule concerns resolved at firing time, so rules with
        # different bindings still share one ECA-manager per event type.
        return ("method", self.class_name, self.method, self.moment.value)

    def category(self) -> EventCategory:
        return EventCategory.SINGLE_METHOD

    def describe(self) -> str:
        return (f"{self.moment.value} "
                f"{self.class_name}.{self.method}()")


@dataclass(frozen=True)
class StateChangeEventSpec(PrimitiveEventSpec):
    """A write to ``class_name.attribute`` (None = any attribute)."""

    class_name: str
    attribute: Optional[str] = None
    instance_binding: Optional[str] = None

    def key(self) -> Hashable:
        return ("state", self.class_name, self.attribute)

    def category(self) -> EventCategory:
        return EventCategory.SINGLE_METHOD

    def describe(self) -> str:
        attr = self.attribute or "*"
        return f"on change {self.class_name}.{attr}"


class FlowEventKind(enum.Enum):
    """Transaction-related and DB-internal flow-control events."""

    BOT = "bot"
    EOT = "eot"            # after work, before commit
    COMMIT = "commit"
    ABORT = "abort"
    PERSIST = "persist"
    DELETE = "delete"
    FETCH = "fetch"


@dataclass(frozen=True)
class FlowEventSpec(PrimitiveEventSpec):
    """Flow-control event.

    The paper classifies transaction-related events with the simple method
    events (Section 3.2), so their category is SINGLE_METHOD: they can be
    related to the transaction in which they were raised.
    """

    kind: FlowEventKind

    def key(self) -> Hashable:
        return ("flow", self.kind.value)

    def category(self) -> EventCategory:
        return EventCategory.SINGLE_METHOD

    def describe(self) -> str:
        return f"on {self.kind.value}"


@dataclass(frozen=True)
class SignalEventSpec(PrimitiveEventSpec):
    """Explicit user signal, 'modelled as a method-invocation event'."""

    signal_name: str

    def key(self) -> Hashable:
        return ("signal", self.signal_name)

    def category(self) -> EventCategory:
        return EventCategory.SINGLE_METHOD

    def describe(self) -> str:
        return f"signal {self.signal_name!r}"


@dataclass(frozen=True)
class TemporalEventSpec(PrimitiveEventSpec):
    """Base for temporal events: they occur independently of transactions,
    so rules they trigger may only run detached (Table 1)."""

    def category(self) -> EventCategory:
        return EventCategory.PURELY_TEMPORAL

    @property
    def is_temporal(self) -> bool:
        return True


@dataclass(frozen=True)
class AbsoluteEventSpec(TemporalEventSpec):
    """An absolute point in time (clock seconds)."""

    at: float

    def key(self) -> Hashable:
        return ("time-abs", self.at)

    def describe(self) -> str:
        return f"at time {self.at}"


@dataclass(frozen=True)
class RelativeEventSpec(TemporalEventSpec):
    """``delay`` seconds after each occurrence of ``anchor``."""

    delay: float
    anchor: EventSpec

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise EventDefinitionError("relative delay must be >= 0")

    def key(self) -> Hashable:
        return ("time-rel", self.delay, self.anchor.key())

    def describe(self) -> str:
        return f"{self.delay}s after {self.anchor.describe()}"


@dataclass(frozen=True)
class PeriodicEventSpec(TemporalEventSpec):
    """Every ``period`` seconds, optionally bounded."""

    period: float
    start: Optional[float] = None
    end: Optional[float] = None
    count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise EventDefinitionError("period must be positive")
        if self.count is not None and self.count < 1:
            raise EventDefinitionError("count must be >= 1")

    def key(self) -> Hashable:
        return ("time-periodic", self.period, self.start, self.end,
                self.count)

    def describe(self) -> str:
        return f"every {self.period}s"


@dataclass(frozen=True)
class MilestoneEventSpec(TemporalEventSpec):
    """Milestone: raised when a transaction has not reached the labelled
    milestone by its scheduled time — the contingency-plan trigger of
    Section 3.1."""

    label: str

    def key(self) -> Hashable:
        return ("milestone", self.label)

    def describe(self) -> str:
        return f"milestone {self.label!r} missed"


_occurrence_seq = itertools.count(1)


def advance_occurrence_seq(floor: int) -> None:
    """Ensure future occurrence seqs are strictly greater than ``floor``.

    Called when occurrences are reconstructed from a durable composer
    checkpoint: restored seqs were allocated in a previous process, so the
    fresh counter must jump past them or the global total order (which
    sequence/temporal composition relies on) would interleave new
    occurrences *before* restored ones.
    """
    global _occurrence_seq
    nxt = next(_occurrence_seq)
    _occurrence_seq = itertools.count(max(nxt, floor + 1))


@dataclass(eq=False)
class EventOccurrence:
    """One detected event instance.

    ``tx_ids`` holds the ids of the *top-level* transactions the occurrence
    originated in (empty for temporal events).  For composites it is the
    union over components — the set whose outcomes the causally dependent
    coupling modes must respect.
    """

    spec: EventSpec
    category: EventCategory
    timestamp: float
    tx_ids: frozenset[int] = frozenset()
    parameters: dict[str, Any] = field(default_factory=dict)
    components: tuple["EventOccurrence", ...] = ()
    seq: int = field(default_factory=lambda: next(_occurrence_seq))
    #: observability context (``repro.obs``): the id of the trace this
    #: occurrence belongs to and the span that produced it.  Set by the
    #: event service / composer when tracing is enabled; carried on the
    #: occurrence so spans opened on other threads (composition workers,
    #: deferred drains, detached rules) attach to the originating trace.
    trace_id: Optional[int] = None
    span_id: Optional[int] = None
    #: ``perf_counter`` stamp taken at signal time when observability is
    #: on (0.0 otherwise); the scheduler subtracts it at rule-action
    #: completion for the end-to-end detection-latency SLO histograms.
    detected_at: float = 0.0

    @property
    def spec_key(self) -> Hashable:
        return self.spec.key()

    @property
    def is_composite(self) -> bool:
        return bool(self.components)

    def all_primitive_components(self) -> list["EventOccurrence"]:
        """Flatten to the primitive occurrences this one is built from."""
        if not self.components:
            return [self]
        out: list[EventOccurrence] = []
        for component in self.components:
            out.extend(component.all_primitive_components())
        return out

    def __repr__(self) -> str:
        return (f"<Event {self.spec.describe()} @{self.timestamp:.3f} "
                f"seq={self.seq} txs={sorted(self.tx_ids)}>")
