"""The textual REACH rule DDL (paper, Section 6.1).

The paper defines rules in a small C++-flavoured language::

    rule WaterLevel {
        prio 5;
        decl River river, Reactor reactor named "BlockA";
        event after river->updateWaterLevel(x);
        cond imm x < 37 and river->getWaterTemp() > 24.5
                 and reactor->getHeatOutput() > 1000000;
        action imm reactor->reducePlannedPower(0.05);
    };

This module parses that syntax (``->`` and ``.`` are interchangeable) and
compiles each rule into a :class:`~repro.core.rules.Rule` whose condition
and action closures evaluate over the declared variables — the Python
analog of the paper's generated ``<Rule>Cond`` / ``<Rule>Action`` C
functions archived in a shared library.

Clauses:

* ``prio N;`` — priority.
* ``decl Class var [named "persistent-name"], ...;`` — variable
  declarations.  A ``named`` variable is fetched from the database when the
  rule runs (the paper's ``OpenOODB->fetch("Block A")``); an unnamed
  variable is bound to the instance the triggering event occurred on.
* ``event <event-expr>;`` — the triggering event.  Primitive forms:
  ``after var.method(p1, p2)``, ``before var.method()``,
  ``on change var.attr``, ``on commit|abort|bot|eot|persist|delete``,
  ``signal "name"``, ``at T``, ``every T``, ``milestone "label"``.
  Composites: ``A then B`` (sequence), ``A also B`` (conjunction),
  ``A else B`` (disjunction), with optional ``within T`` validity and
  ``across`` to allow the components to originate in different
  transactions (Section 3.2's composite-n-TX events; requires
  ``within``).
* ``cond <mode> <expr>;`` — condition with coupling mode ``imm``,
  ``deferred``, ``detached``, ``parallel``, ``sequential``, ``exclusive``.
* ``action <mode> <stmt>, ...;`` — statements are method calls or
  assignments ``var.attr = expr``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.coupling import CouplingMode
from repro.core.events import (
    AbsoluteEventSpec,
    EventSpec,
    FlowEventKind,
    FlowEventSpec,
    MethodEventSpec,
    MilestoneEventSpec,
    Moment,
    PeriodicEventSpec,
    SignalEventSpec,
    StateChangeEventSpec,
)
from repro.core.algebra import (
    Conjunction,
    Disjunction,
    EventScope,
    Sequence,
)
from repro.core.rules import Rule, RuleContext
from repro.errors import RuleParseError
from repro.expr import Attribute, Binary, Node, Parser, Token, tokenize

_MODES = {
    "imm": CouplingMode.IMMEDIATE,
    "immediate": CouplingMode.IMMEDIATE,
    "deferred": CouplingMode.DEFERRED,
    "detached": CouplingMode.DETACHED,
    "parallel": CouplingMode.PARALLEL_CAUSALLY_DEPENDENT,
    "sequential": CouplingMode.SEQUENTIAL_CAUSALLY_DEPENDENT,
    "exclusive": CouplingMode.EXCLUSIVE_CAUSALLY_DEPENDENT,
}

_FLOW_KINDS = {kind.value: kind for kind in FlowEventKind}


@dataclass
class Declaration:
    class_name: str
    variable: str
    persistent_name: Optional[str] = None


@dataclass
class ParsedRule:
    name: str
    priority: int
    declarations: list[Declaration]
    event: EventSpec
    cond_mode: Optional[CouplingMode]
    cond_expr: Optional[Node]
    action_mode: CouplingMode
    action_statements: list[Node]


class _Cursor:
    """Token cursor shared with the expression parser."""

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "end":
            self.pos += 1
        return token

    def expect(self, text: str) -> Token:
        token = self.peek()
        if token.text != text:
            raise RuleParseError(
                f"expected {text!r} at position {token.position}, got "
                f"{token.text!r}")
        return self.advance()

    def expect_name(self) -> Token:
        token = self.advance()
        if token.kind != "name":
            raise RuleParseError(
                f"expected identifier at position {token.position}, got "
                f"{token.text!r}")
        return token

    def at(self, text: str) -> bool:
        return self.peek().text == text

    def at_end(self) -> bool:
        return self.peek().kind == "end"

    def parse_expression(self) -> Node:
        """Delegate to the shared expression parser, advancing this
        cursor past the consumed tokens."""
        parser = Parser(self.tokens[self.pos:])
        node = parser.parse_expression()
        self.pos += parser._pos
        return node


def parse_rules(text: str) -> list[ParsedRule]:
    """Parse DDL text containing one or more rule definitions."""
    cursor = _Cursor(text)
    rules: list[ParsedRule] = []
    while not cursor.at_end():
        token = cursor.peek()
        if token.text == ";":
            cursor.advance()
            continue
        if token.kind == "name" and token.text == "rule":
            rules.append(_parse_rule(cursor))
        else:
            raise RuleParseError(
                f"expected 'rule' at position {token.position}, got "
                f"{token.text!r}")
    if not rules:
        raise RuleParseError("no rule definitions found")
    return rules


def _parse_rule(cursor: _Cursor) -> ParsedRule:
    cursor.expect("rule")
    name = cursor.expect_name().text
    cursor.expect("{")
    priority = 0
    declarations: list[Declaration] = []
    event: Optional[EventSpec] = None
    cond_mode: Optional[CouplingMode] = None
    cond_expr: Optional[Node] = None
    action_mode: Optional[CouplingMode] = None
    action_statements: list[Node] = []
    while not cursor.at("}"):
        clause = cursor.expect_name().text
        if clause == "prio":
            token = cursor.advance()
            if token.kind != "num":
                raise RuleParseError("prio requires a number")
            priority = int(float(token.text))
        elif clause == "decl":
            declarations.extend(_parse_declarations(cursor))
        elif clause == "event":
            event = _parse_event(cursor, declarations)
        elif clause == "cond":
            cond_mode = _parse_mode(cursor)
            cond_expr = cursor.parse_expression()
        elif clause == "action":
            action_mode = _parse_mode(cursor)
            action_statements = _parse_statements(cursor)
        else:
            raise RuleParseError(f"unknown clause {clause!r} in rule "
                                 f"{name!r}")
        cursor.expect(";")
    cursor.expect("}")
    if event is None:
        raise RuleParseError(f"rule {name!r} has no event clause")
    if action_mode is None:
        raise RuleParseError(f"rule {name!r} has no action clause")
    return ParsedRule(name=name, priority=priority,
                      declarations=declarations, event=event,
                      cond_mode=cond_mode, cond_expr=cond_expr,
                      action_mode=action_mode,
                      action_statements=action_statements)


def _parse_mode(cursor: _Cursor) -> CouplingMode:
    token = cursor.expect_name()
    mode = _MODES.get(token.text)
    if mode is None:
        raise RuleParseError(
            f"unknown coupling mode {token.text!r} at {token.position}")
    return mode


def _parse_declarations(cursor: _Cursor) -> list[Declaration]:
    declarations = []
    while True:
        class_name = cursor.expect_name().text
        variable = cursor.expect_name().text
        persistent_name = None
        if cursor.at("named"):
            cursor.advance()
            token = cursor.advance()
            if token.kind != "str":
                raise RuleParseError("named requires a string literal")
            persistent_name = token.text[1:-1]
        declarations.append(Declaration(class_name, variable,
                                        persistent_name))
        if cursor.at(","):
            cursor.advance()
            continue
        return declarations


def _parse_event(cursor: _Cursor,
                 declarations: list[Declaration]) -> EventSpec:
    spec = _parse_primitive_event(cursor, declarations)
    while cursor.peek().text in ("then", "also", "else"):
        connector = cursor.advance().text
        right = _parse_primitive_event(cursor, declarations)
        if connector == "then":
            spec = Sequence(spec, right)
        elif connector == "also":
            spec = Conjunction(spec, right)
        else:
            spec = Disjunction(spec, right)
    while cursor.peek().text in ("within", "across"):
        keyword = cursor.advance().text
        if keyword == "within":
            token = cursor.advance()
            if token.kind != "num":
                raise RuleParseError("within requires a number of seconds")
            spec = spec.within(float(token.text))
        else:
            from repro.core.algebra import CompositeEventSpec
            if not isinstance(spec, CompositeEventSpec):
                raise RuleParseError(
                    "'across' applies to composite events only")
            spec = spec.scoped(EventScope.MULTI_TX)
    return spec


def _class_of_variable(declarations: list[Declaration],
                       variable: str) -> str:
    for decl in declarations:
        if decl.variable == variable:
            return decl.class_name
    raise RuleParseError(f"variable {variable!r} is not declared")


def _parse_primitive_event(cursor: _Cursor,
                           declarations: list[Declaration]) -> EventSpec:
    token = cursor.expect_name()
    keyword = token.text
    if keyword in ("after", "before"):
        variable = cursor.expect_name().text
        cursor.expect(".")
        method = cursor.expect_name().text
        params: list[str] = []
        cursor.expect("(")
        while not cursor.at(")"):
            params.append(cursor.expect_name().text)
            if cursor.at(","):
                cursor.advance()
        cursor.expect(")")
        return MethodEventSpec(
            class_name=_class_of_variable(declarations, variable),
            method=method,
            moment=Moment.AFTER if keyword == "after" else Moment.BEFORE,
            param_names=tuple(params),
            instance_binding=variable)
    if keyword == "on":
        what = cursor.expect_name().text
        if what == "change":
            variable = cursor.expect_name().text
            cursor.expect(".")
            attribute = cursor.expect_name().text
            return StateChangeEventSpec(
                class_name=_class_of_variable(declarations, variable),
                attribute=attribute,
                instance_binding=variable)
        kind = _FLOW_KINDS.get(what)
        if kind is None:
            raise RuleParseError(f"unknown flow event {what!r}")
        return FlowEventSpec(kind)
    if keyword == "signal":
        token = cursor.advance()
        if token.kind == "str":
            return SignalEventSpec(token.text[1:-1])
        if token.kind == "name":
            return SignalEventSpec(token.text)
        raise RuleParseError("signal requires a name")
    if keyword == "at":
        token = cursor.advance()
        if token.kind != "num":
            raise RuleParseError("at requires a number (absolute time)")
        return AbsoluteEventSpec(float(token.text))
    if keyword == "every":
        token = cursor.advance()
        if token.kind != "num":
            raise RuleParseError("every requires a number (period)")
        return PeriodicEventSpec(float(token.text))
    if keyword == "milestone":
        token = cursor.advance()
        if token.kind != "str":
            raise RuleParseError("milestone requires a string label")
        return MilestoneEventSpec(token.text[1:-1])
    raise RuleParseError(f"unknown event form {keyword!r}")


def _parse_statements(cursor: _Cursor) -> list[Node]:
    statements = [cursor.parse_expression()]
    while cursor.at(","):
        cursor.advance()
        statements.append(cursor.parse_expression())
    return statements


# ---------------------------------------------------------------------------
# Compilation to Rule objects
# ---------------------------------------------------------------------------

def _build_environment(parsed: ParsedRule, ctx: RuleContext) -> dict[str, Any]:
    env: dict[str, Any] = dict(ctx.bindings)
    for decl in parsed.declarations:
        if decl.persistent_name is not None:
            env[decl.variable] = ctx.db.fetch(decl.persistent_name)
        elif decl.variable not in env:
            # Unnamed variable not bound by the event: leave unbound; the
            # expression evaluator reports a clear error if referenced.
            pass
    return env


def _compile_condition(parsed: ParsedRule):
    if parsed.cond_expr is None:
        return None

    def condition(ctx: RuleContext) -> bool:
        env = _build_environment(parsed, ctx)
        return bool(parsed.cond_expr.evaluate(env))

    return condition


def _compile_action(parsed: ParsedRule):
    statements = parsed.action_statements

    def action(ctx: RuleContext) -> None:
        env = _build_environment(parsed, ctx)
        for statement in statements:
            # `var.attr = value` parses as an OQL-style '=' comparison with
            # an attribute target; in action position it is an assignment.
            if isinstance(statement, Binary) and statement.op == "=" and \
                    isinstance(statement.left, Attribute):
                target = statement.left.target.evaluate(env)
                setattr(target, statement.left.name,
                        statement.right.evaluate(env))
            else:
                statement.evaluate(env)

    return action


def compile_rules(text: str, db: Any) -> list[Rule]:
    """Parse DDL and build unregistered :class:`Rule` objects.

    ``db`` is referenced by the compiled closures for ``named`` fetches;
    registration (and Table 1 validation) is the caller's job — use
    :meth:`~repro.core.database.ReachDatabase.define_rules` normally.
    """
    rules = []
    for parsed in parse_rules(text):
        cond_mode = parsed.cond_mode or parsed.action_mode
        rules.append(Rule(
            name=parsed.name,
            event=parsed.event,
            condition=_compile_condition(parsed),
            action=_compile_action(parsed),
            cond_coupling=cond_mode,
            action_coupling=parsed.action_mode,
            priority=parsed.priority,
            description=f"compiled from DDL",
        ))
    return rules
