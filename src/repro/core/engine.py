"""The REACH engine: the shared kernel below every client session.

The paper's Figure 1 meta-architecture plugs policy managers into one
kernel; this module is that kernel.  A :class:`ReachEngine` owns every
process-wide service — storage manager and WAL, lock manager, data
dictionary, the sentry registry, the event service with its ECA-managers
and composers, the rule scheduler, the temporal event source, and the
observability pipeline — while per-client state (the current-transaction
stack, the pin cache, the firing context) lives in
:class:`~repro.core.session.Session` objects created from the engine.

The split is the structural prerequisite for serving many concurrent
clients over one engine: N sessions each run transactions against the
same kernel, rules fire in the triggering session's transaction scope,
and nothing a session does leaks into another session — or into another
engine in the same process (each engine has its own scoped
:class:`~repro.oodb.sentry.SentryRegistry`).

:class:`~repro.core.database.ReachDatabase` remains the friendly entry
point: a thin facade over one engine plus one default session.
"""

from __future__ import annotations

import itertools
import tempfile
import threading
import weakref
from contextlib import ExitStack, contextmanager
from typing import Any, Iterator, Optional, Type, Union

from repro.clock import Clock, VirtualClock
from repro.config import ExecutionConfig
from repro.core.algebra import CompositeEventSpec
from repro.core.coupling import CouplingMode, check_supported
from repro.core.eca_manager import (
    EventService,
    ReachRulePolicyManager,
)
from repro.core.events import (
    EventSpec,
    MilestoneEventSpec,
    SignalEventSpec,
    TemporalEventSpec,
    advance_occurrence_seq,
)
from repro.core.rule_builder import RuleBuilder
from repro.core.rules import Action, Condition, Rule
from repro.core.scheduler import RuleScheduler
from repro.core.session import Session
from repro.core.temporal import TemporalEventSource
from repro.errors import RuleDefinitionError
from repro.faults.registry import FaultRegistry
from repro.obs.admin import AdminServer
from repro.obs.export import JsonlFileExporter, TelemetryPipeline
from repro.obs.flight import NULL_FLIGHT, FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Trace, Tracer
from repro.oodb.address_space import (
    ActiveAddressSpace,
    PassiveAddressSpace,
    ShardMap,
)
from repro.oodb.change import ChangePolicyManager
from repro.oodb.data_dictionary import FIRST_USER_OID, DataDictionary
from repro.oodb.indexing import HashIndex, IndexPolicyManager
from repro.oodb.locks import LockManager
from repro.oodb.meta import (
    MetaArchitecture,
    PolicyManager,
    SupportModule,
)
from repro.oodb.oid import OID, ShardedOIDAllocator
from repro.oodb.persistence import PersistencePolicyManager
from repro.oodb.query import QueryProcessor
from repro.oodb.sentry import SentryRegistry
from repro.oodb.transactions import (
    Transaction,
    TransactionContext,
    TransactionManager,
)

_engine_ids = itertools.count(1)

#: Every engine constructed and not yet closed, weakly held.  Test
#: harnesses (``tests/conftest.py``) walk this to dump flight rings and
#: observability state as failure artifacts; nothing in the engine's own
#: lifecycle reads it.
_LIVE_ENGINES: "weakref.WeakSet[ReachEngine]" = weakref.WeakSet()


def live_engines() -> list["ReachEngine"]:
    """Engines currently open in this process (snapshot, weakly held)."""
    return [eng for eng in list(_LIVE_ENGINES) if not eng.closed]


class TransactionPolicyManager(PolicyManager):
    """Thin wrapper giving the transaction manager a Figure 1 presence."""

    name = "Transaction PM (flat + closed nested)"
    subscribed_kinds = ()

    def __init__(self, tx_manager: TransactionManager):
        super().__init__()
        self.tx_manager = tx_manager

    def describe(self) -> str:
        stats = self.tx_manager.stats
        return (f"{self.name} ({stats['begun']} begun, "
                f"{stats['committed']} committed, "
                f"{stats['aborted']} aborted)")


class _NamedSupportModule(SupportModule):
    def __init__(self, name: str):
        self.name = name


class ReachEngine:
    """The shared kernel of an integrated active OODBMS instance.

    Args:
        directory: storage directory; ``None`` uses a fresh temporary
            directory (transient database).
        config: execution configuration (synchronous by default).
        clock: time source; defaults to a deterministic
            :class:`~repro.clock.VirtualClock`.
        buffer_capacity: buffer-pool frames for the storage manager.
        sentry_registry: low-level event detector; defaults to a fresh
            *scoped* registry so concurrent engines in one process do not
            observe each other's sessions.  A
            :class:`~repro.core.sharding.ShardedEngine` passes one shared
            registry to all of its shards so a single session binding
            covers the whole topology.
        shard_id: this kernel's position in a sharded topology (0 in the
            classic single-kernel case).
        shard_map: the topology's routing state
            (:class:`~repro.oodb.address_space.ShardMap`).  When it names
            more than one shard, the engine's data dictionary allocates
            from a :class:`~repro.oodb.oid.ShardedOIDAllocator` so this
            kernel only ever issues OIDs it owns.
    """

    def __init__(self, directory: Optional[str] = None,
                 config: Optional[ExecutionConfig] = None,
                 clock: Optional[Clock] = None,
                 buffer_capacity: int = 128,
                 sentry_registry: Optional[SentryRegistry] = None,
                 shard_id: int = 0,
                 shard_map: Optional[ShardMap] = None):
        from repro.storage.storage_manager import StorageManager

        self.engine_id = next(_engine_ids)
        self.config = config or ExecutionConfig()
        self.clock = clock or VirtualClock()
        if directory is None:
            directory = tempfile.mkdtemp(prefix="reach-db-")
        self.directory = directory
        self.shard_id = shard_id
        self.shard_map = shard_map or ShardMap(shard_count=1)

        # -- observability (repro.obs) -----------------------------------
        # Built first so every subsystem can bind its instruments at
        # construction; both are inert null-object pipelines unless
        # ``config.observability`` is set.
        self.metrics_registry = MetricsRegistry(
            enabled=self.config.observability)
        self.tracer = Tracer(enabled=self.config.observability,
                             capacity=self.config.trace_capacity,
                             sample_rate=self.config.trace_sampling)

        # -- flight recorder (repro.obs.flight) ---------------------------
        # Always on (fixed-cost ring) unless explicitly disabled; it is
        # deliberately independent of ``config.observability`` so the
        # post-mortem record exists even on unobserved engines.
        if self.config.flight_recorder:
            self.flight = FlightRecorder(
                capacity=self.config.flight_capacity, directory=directory)
        else:
            self.flight = NULL_FLIGHT

        # -- telemetry export (repro.obs.export) --------------------------
        # Inert (no thread, no span sink) until an exporter is attached,
        # either here via ``config.telemetry_jsonl`` or later through
        # ``engine.telemetry().add_exporter(...)``.
        self.telemetry_pipeline = TelemetryPipeline(
            tracer=self.tracer, metrics=self.metrics_registry,
            capacity=self.config.telemetry_queue_capacity)
        if self.config.telemetry_jsonl:
            self.telemetry_pipeline.add_exporter(
                JsonlFileExporter(self.config.telemetry_jsonl))

        # -- fault injection (repro.faults) -------------------------------
        # Same null-object economics as the obs pipeline: disabled (the
        # default) hands every instrumentation point the shared no-op
        # point; enabled but disarmed costs one list check per hit.
        self.faults = FaultRegistry(enabled=self.config.fault_injection,
                                    seed=self.config.fault_seed,
                                    metrics=self.metrics_registry,
                                    flight=self.flight)

        # -- network front end (repro.server) -----------------------------
        # The engine never imports the server package (it sits above core
        # in the layering); a running ReachServer registers itself here
        # via attach_server() so statistics() and close() can reach it.
        self._server: Optional[Any] = None

        # -- low-level event detection -----------------------------------
        # Each engine owns its sentry registry: watches installed through
        # it only deliver while one of this engine's sessions is bound to
        # the delivering thread (or no engine is bound at all), so two
        # engines in one process stay isolated.
        self.sentry_registry = sentry_registry or SentryRegistry(
            scoped=True, name=f"engine-{self.engine_id}")
        if self.config.observability:
            self.sentry_registry.attach_metrics(self.metrics_registry)

        # -- meta-architecture and support modules (Figure 1) ------------
        self.meta = MetaArchitecture()
        concurrency = self.config.concurrency
        self.locks = LockManager(
            stripes=concurrency.lock_stripes,
            metrics=self.metrics_registry, faults=self.faults,
            flight=self.flight,
            flight_wait_threshold=self.config.flight_lock_wait_threshold,
            tracer=self.tracer)
        self.tx_manager = TransactionManager(
            self.meta, self.locks, clock=self.clock, tracer=self.tracer,
            metrics=self.metrics_registry,
            seqlock_stats=concurrency.seqlock_stats)
        self.storage = StorageManager(directory,
                                      buffer_capacity=buffer_capacity,
                                      metrics=self.metrics_registry,
                                      faults=self.faults,
                                      group_commit=self.config.group_commit,
                                      commit_wait_us=self.config.commit_wait_us,
                                      max_commit_batch=self.config.max_commit_batch,
                                      flight=self.flight,
                                      tracer=self.tracer)
        if self.shard_map.shard_count > 1:
            allocator = ShardedOIDAllocator(
                shard_id, self.shard_map.shard_count,
                self.shard_map.range_size, start=FIRST_USER_OID)
            self.dictionary = DataDictionary(allocator=allocator)
        else:
            self.dictionary = DataDictionary()
        self.active_space = ActiveAddressSpace()
        self.passive_space = PassiveAddressSpace(self.storage)
        self.meta.add_support_module(self.active_space)
        self.meta.add_support_module(self.passive_space)
        self.meta.add_support_module(self.dictionary)
        if self.shard_map.shard_count > 1:
            self.meta.add_support_module(self.shard_map)
        self.meta.add_support_module(
            _NamedSupportModule("translation (swizzling serializer)"))
        self.meta.add_support_module(
            _NamedSupportModule("communications (in-process)"))

        # -- policy managers ----------------------------------------------
        # Plug order matters: persistence (dirty marking) and indexing see
        # state changes before the rule PM fires rules on them.
        self.persistence = self.meta.plug(PersistencePolicyManager(
            self.dictionary, self.active_space, self.passive_space,
            self.tx_manager))
        self.change = self.meta.plug(ChangePolicyManager(
            self.tx_manager, persistence=self.persistence,
            sentry_registry=self.sentry_registry))
        self.indexes = self.meta.plug(IndexPolicyManager(
            self.dictionary, self.tx_manager,
            persistence=self.persistence))
        self.query_processor = self.meta.plug(QueryProcessor(
            self.dictionary, self.persistence,
            index_manager=self.indexes))
        self.meta.plug(TransactionPolicyManager(self.tx_manager))

        # -- REACH ----------------------------------------------------------
        self.scheduler = RuleScheduler(self, self.tx_manager, self.config,
                                       tracer=self.tracer,
                                       metrics=self.metrics_registry,
                                       sentry_registry=self.sentry_registry,
                                       faults=self.faults,
                                       flight=self.flight)
        # Per-tenant SLO attribution: the server names its sessions
        # "<tenant>/<client>", and this hook is how the scheduler maps a
        # firing's session back to that tenant without core importing
        # the server package.
        self.scheduler.tenant_resolver = self.tenant_of_session
        self.events = EventService(
            self.meta, self.tx_manager, self.scheduler,
            self.sentry_registry, self.clock, self.config,
            resolve_class=self.dictionary.type_named,
            tracer=self.tracer, metrics=self.metrics_registry,
            faults=self.faults, flight=self.flight)
        self.rule_pm = self.meta.plug(ReachRulePolicyManager(
            self.events, self.scheduler))
        # Durable composite-event detection: stash the COMPOSER_CHECKPOINT
        # payloads storage recovery found (keyed by composite spec key,
        # oldest first — restore walks them newest-first with fallback),
        # bump the occurrence-seq floor past every checkpointed watermark
        # so post-boot occurrences order strictly after restored ones, and
        # wire emission (commit boundaries) plus compaction (storage
        # checkpoints) into the WAL.
        max_watermark = 0
        for payload in self.storage.recovered_composer_checkpoints:
            try:
                key = payload["key"]
                watermark = payload["watermark"]
                self.events.recovered_composer_state.setdefault(
                    key, []).append(payload)
            except (TypeError, KeyError):
                continue  # malformed: the restore path would reject it too
            if isinstance(watermark, int):
                max_watermark = max(max_watermark, watermark)
        if max_watermark:
            advance_occurrence_seq(max_watermark)
        self.events.composer_checkpoint_sink = \
            self.storage.append_composer_checkpoint
        self.storage.composer_checkpoint_provider = \
            self.events.collect_composer_snapshots
        self.events.recovered_tx_sink = \
            self.tx_manager.seed_recovered_outcomes
        self.temporal = TemporalEventSource(
            self.clock, self.tx_manager,
            dispatch=self.events.dispatch_temporal,
            anchor_subscribe=self._subscribe_anchor)
        self.temporal.schedule_recurring(self.config.gc_interval,
                                         self.events.collect_garbage)

        # Pull-based queue-depth gauges: evaluated only when a metrics
        # snapshot is taken, never on the detection path.
        self.metrics_registry.gauge_fn(
            "scheduler.detached.depth",
            self.scheduler.pending_detached_count)
        self.metrics_registry.gauge_fn(
            "scheduler.deferred.depth",
            self.tx_manager.pending_deferred_count)
        self.metrics_registry.gauge_fn(
            "composer.semi_composed.pending",
            self.events.pending_semi_composed)
        self.metrics_registry.gauge_fn(
            "scheduler.dead_letters.depth",
            self.scheduler.dead_letter_count)
        self.metrics_registry.gauge_fn(
            "tracer.retained", self.tracer.__len__)
        self.metrics_registry.gauge_fn(
            "tracer.evicted", lambda: self.tracer.evicted)
        self.metrics_registry.gauge_fn(
            "telemetry.dropped",
            lambda: self.telemetry_pipeline.dropped)

        self._rules: dict[str, tuple[Rule, Any]] = {}
        self._sessions: list[Session] = []
        self._sessions_created = 0
        self._closed = False
        self._lock = threading.RLock()

        # The admin endpoint starts last so every attribute it serves
        # already exists; loopback-only, daemon thread, ephemeral port
        # when admin_port=0 (engine.admin_address has the bound port).
        self.admin: Optional[AdminServer] = None
        if self.config.admin_port is not None:
            self.admin = AdminServer(self, port=self.config.admin_port)
        _LIVE_ENGINES.add(self)

    # ------------------------------------------------------------------
    # Sessions and scope
    # ------------------------------------------------------------------

    def create_session(self, name: Optional[str] = None,
                       thread_affine: bool = False) -> Session:
        """Open a new client session over this engine.

        Each session owns its current-transaction stack (an explicit
        :class:`~repro.oodb.transactions.TransactionContext`), a pin
        cache, and a view of the firing log; use
        ``with session.transaction():`` (or ``session.use()``) to serve
        the client from any thread.

        ``thread_affine=True`` creates a session without its own context:
        transactions resolve through the per-thread default stacks, the
        legacy one-client-per-thread behaviour the facade's default
        session keeps for backwards compatibility.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("engine is closed")
            self._sessions_created += 1
            session = Session(self, name=name, thread_affine=thread_affine)
            self._sessions.append(session)
        return session

    def sessions(self) -> list[Session]:
        with self._lock:
            return list(self._sessions)

    def tenant_of_session(self, session_id: int) -> Optional[str]:
        """The tenant a session belongs to, or None for local sessions.

        The network front end names wire sessions ``<tenant>/<client>``
        (see :meth:`repro.server.server.ReachServer._handshake`); any
        other session name has no tenant.  Used by the scheduler's
        per-tenant SLO histograms (cached there per session id).
        """
        with self._lock:
            for session in self._sessions:
                if session.id == session_id:
                    name = session.name or ""
                    if "/" in name:
                        return name.split("/", 1)[0]
                    return None
        return None

    def _forget_session(self, session: Session) -> None:
        with self._lock:
            if session in self._sessions:
                self._sessions.remove(session)

    # ------------------------------------------------------------------
    # Network front end registration (duck-typed; see repro.server)
    # ------------------------------------------------------------------

    def attach_server(self, server: Any) -> None:
        """Register a running network front end with this engine.

        The handle only needs ``stats()`` and ``close()``; the engine
        consults it for the ``server`` statistics section and tears it
        down first on :meth:`close` so in-flight wire transactions can
        finish against a still-open engine.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("engine is closed")
            self._server = server

    def detach_server(self, server: Any) -> None:
        """Drop the registration; idempotent, ignores stale handles."""
        with self._lock:
            if self._server is server:
                self._server = None

    def server_stats(self) -> dict[str, Any]:
        """The ``statistics()["server"]`` section: the attached front
        end's counters, or an inert stub when none is attached."""
        server = self._server
        if server is None:
            return {"enabled": False, "connections": {"active": 0},
                    "requests": {"served": 0}}
        return server.stats()

    @contextmanager
    def activate(self, context: Optional[TransactionContext] = None) \
            -> Iterator["ReachEngine"]:
        """Bind this engine (and optionally a transaction context) to the
        calling thread: sentried calls in the ``with`` body deliver to
        this engine only, and the current transaction resolves through
        ``context`` when one is given."""
        with ExitStack() as stack:
            if context is not None:
                stack.enter_context(self.tx_manager.activate(context))
            stack.enter_context(self.sentry_registry.bound())
            yield self

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------

    def register_class(self, cls: Type, monitor_state: bool = True) -> Type:
        """Register an application class with the data dictionary and
        begin monitoring its state changes.

        The class should be decorated with
        :func:`~repro.oodb.sentry.sentried`; monitoring is orthogonal to
        persistence (Section 6.1).
        """
        self.dictionary.register_type(cls)
        if monitor_state:
            self.change.monitor(cls)
        return cls

    def create_index(self, cls_or_name: Union[Type, str],
                     attribute: str) -> HashIndex:
        name = cls_or_name if isinstance(cls_or_name, str) \
            else cls_or_name.__name__
        return self.indexes.create_index(name, attribute)

    # ------------------------------------------------------------------
    # Transactions (engine-level: current ambient context)
    # ------------------------------------------------------------------

    @contextmanager
    def transaction(self, nested: Optional[bool] = None,
                    deadline: Optional[float] = None) -> Iterator[Transaction]:
        with self.tx_manager.transaction(nested=nested,
                                         deadline=deadline) as tx:
            yield tx

    def current_transaction(self) -> Optional[Transaction]:
        return self.tx_manager.current()

    # ------------------------------------------------------------------
    # Objects and queries
    # ------------------------------------------------------------------

    def persist(self, obj: Any, name: Optional[str] = None) -> OID:
        if not self.dictionary.has_type(type(obj).__name__):
            self.register_class(type(obj))
        return self.persistence.persist(obj, name)

    def fetch(self, target: Union[str, OID]) -> Any:
        return self.persistence.fetch(target)

    def delete(self, target: Union[str, OID, Any]) -> None:
        self.persistence.delete(target)

    def query(self, text: str, **params: Any) -> list[Any]:
        """Run an OQL-subset query, e.g.
        ``engine.query("select x from River x where x.level < limit",
        limit=37)``."""
        return self.query_processor.execute(text, env=params)

    def flush(self) -> None:
        """Flush dirty persistent state outside a user transaction."""
        self.persistence.flush_now()

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    def rule(self, name: str, event: EventSpec,
             action: Optional[Action] = None,
             condition: Optional[Condition] = None,
             condition_query: Optional[str] = None,
             coupling: CouplingMode = CouplingMode.IMMEDIATE,
             cond_coupling: Optional[CouplingMode] = None,
             action_coupling: Optional[CouplingMode] = None,
             priority: int = 0, critical: bool = False,
             enabled: bool = True, transfer_locks: bool = False,
             description: str = "") -> Rule:
        """Define and register one ECA rule.

        The (event category, coupling mode) combination is validated
        against Table 1 for both the condition and the action coupling;
        unsupported combinations raise
        :class:`~repro.errors.UnsupportedCouplingError` here, at
        definition time.
        """
        rule = Rule(name=name, event=event, action=action,
                    condition=condition, condition_query=condition_query,
                    coupling=coupling, cond_coupling=cond_coupling,
                    action_coupling=action_coupling, priority=priority,
                    critical=critical, enabled=enabled,
                    transfer_locks=transfer_locks,
                    description=description)
        return self.register_rule(rule)

    def on(self, event: EventSpec) -> RuleBuilder:
        """Start a fluent rule definition (terminal ``.named(name)``)."""
        return RuleBuilder(self, event)

    def register_rule(self, rule: Rule, manager: Any = None) -> Rule:
        """Register a rule, building (or reusing) its ECA-manager.

        A pre-built ``manager`` can be supplied by the sharded
        coordinator, which wires composite managers to remote leaves over
        the event bus instead of letting :meth:`_manager_for` wire them
        locally; Table 1 validation and bookkeeping are identical.
        """
        with self._lock:
            if rule.name in self._rules:
                raise RuleDefinitionError(
                    f"a rule named {rule.name!r} already exists")
            category = rule.event.category()
            check_supported(rule.cond_coupling, category, rule.name)
            check_supported(rule.action_coupling, category, rule.name)
            if manager is None:
                manager = self._manager_for(rule.event)
            manager.add_rule(rule)
            self._rules[rule.name] = (rule, manager)
            return rule

    def _manager_for(self, spec: EventSpec):
        if isinstance(spec, CompositeEventSpec):
            manager = self.events.composite_manager(spec)
            for leaf in spec.leaves():
                if isinstance(leaf, TemporalEventSpec):
                    self.temporal.register(leaf)
            return manager
        manager = self.events.primitive_manager(spec)
        if isinstance(spec, TemporalEventSpec):
            self.temporal.register(spec)
        return manager

    def _subscribe_anchor(self, spec, callback) -> None:
        self.events.primitive_manager(spec).add_listener(callback)

    def define_rules(self, ddl: str, persist: bool = False) -> list[Rule]:
        """Parse REACH rule DDL (the paper's textual syntax, Section 6.1)
        and register every rule found.

        With ``persist=True`` the DDL text is stored in the catalog —
        REACH's "rules are objects too" — and recompiled on the next open
        by :meth:`load_persistent_rules`.
        """
        from repro.core.rule_language import compile_rules
        rules = compile_rules(ddl, self)
        for rule in rules:
            self.register_rule(rule)
        if persist:
            self.dictionary.add_rule_ddl(ddl)
            if self.tx_manager.current() is None:
                self.persistence.flush_now()
        return rules

    def load_persistent_rules(self) -> list[Rule]:
        """Recompile and register every rule-DDL block stored in the
        catalog.  Application classes referenced by the rules must be
        registered first.  Already-registered rule names are skipped."""
        from repro.core.rule_language import compile_rules
        loaded: list[Rule] = []
        for ddl in self.dictionary.rule_ddl_blocks():
            for rule in compile_rules(ddl, self):
                if rule.name in self._rules:
                    continue
                self.register_rule(rule)
                loaded.append(rule)
        return loaded

    def drop_rule(self, name: str) -> None:
        with self._lock:
            rule, manager = self._rules.pop(name)
            manager.remove_rule(rule)

    def get_rule(self, name: str) -> Rule:
        return self._rules[name][0]

    def rules(self) -> list[Rule]:
        with self._lock:
            return [rule for rule, __ in self._rules.values()]

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def signal(self, name: str, **parameters: Any) -> None:
        """Raise an explicit user signal (modelled as a method event)."""
        spec = SignalEventSpec(name)
        self.events.emit(spec, parameters)

    def set_milestone(self, label: str, at: float,
                      tx: Optional[Transaction] = None) -> None:
        """Arm a milestone: if the transaction has not finished by ``at``,
        the milestone event fires and its rules (the contingency plan)
        run detached."""
        tx = tx or self.tx_manager.require_current()
        spec = MilestoneEventSpec(label)
        self.events.primitive_manager(spec)
        self.temporal.arm_milestone(spec, tx.top_level().id, at)

    def arm_progress_milestones(self, label: str,
                                fractions: tuple[float, ...] = (0.5, 0.8),
                                tx: Optional[Transaction] = None) -> list[str]:
        """Track a deadline transaction's progress (paper, Section 3.1).

        For each fraction f, arms the milestone ``"{label}@{f}"`` at
        ``begin + f * (deadline - begin)``.  Requires the transaction to
        have been begun with a ``deadline``.  Returns the milestone labels
        so contingency rules can be attached per checkpoint.
        """
        tx = tx or self.tx_manager.require_current()
        top = tx.top_level()
        if top.deadline is None:
            raise RuleDefinitionError(
                "progress milestones require a transaction deadline")
        labels = []
        span = top.deadline - top.begin_time
        for fraction in fractions:
            if not 0 < fraction <= 1:
                raise ValueError("fractions must be in (0, 1]")
            milestone_label = f"{label}@{fraction}"
            self.set_milestone(milestone_label,
                               at=top.begin_time + fraction * span, tx=top)
            labels.append(milestone_label)
        return labels

    def drain_detached(self) -> int:
        """Synchronous mode: run detached work whose dependencies are
        decided.  Runs under this engine's scope so detached rule actions
        deliver their events to this engine only."""
        with self.sentry_registry.bound():
            return self.scheduler.drain_detached()

    def wait_for_composition(self, timeout: float = 10.0) -> None:
        self.events.wait_for_composition(timeout)

    def collect_garbage(self) -> int:
        return self.events.collect_garbage()

    @property
    def history(self):
        """The merged global event history (Section 6.3)."""
        return self.events.global_history

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    def architecture_inventory(self) -> dict[str, list[str]]:
        """The Figure 1 view: plugged policy managers + support modules."""
        return self.meta.inventory()

    # -- observability ---------------------------------------------------

    def metrics(self) -> MetricsRegistry:
        """The engine's metrics registry (null instruments when
        ``config.observability`` is off)."""
        return self.metrics_registry

    def trace(self, trace_id: Optional[int] = None) -> Optional[Trace]:
        """The most recent trace, or the trace with ``trace_id``.

        ``None`` when tracing is disabled or nothing has been recorded.
        Each :class:`~repro.obs.tracer.Trace` is the span tree of one
        sentried call: detection, ECA dispatch, composition, rule firings
        and their commits.
        """
        return self.tracer.trace(trace_id)

    def traces(self) -> list[Trace]:
        """Every retained trace, oldest first."""
        return self.tracer.traces()

    def flight_recorder(self) -> "FlightRecorder":
        """The always-on flight recorder (the shared no-op recorder when
        ``config.flight_recorder`` is False)."""
        return self.flight

    def telemetry(self) -> TelemetryPipeline:
        """The telemetry export pipeline; inert until an exporter is
        attached via :meth:`TelemetryPipeline.add_exporter`."""
        return self.telemetry_pipeline

    @property
    def admin_address(self) -> Optional[tuple[str, int]]:
        """``(host, port)`` of the live admin endpoint, or ``None``."""
        return self.admin.address if self.admin is not None else None

    def dump_observability(self, json_format: bool = False) -> str:
        """Text (default) or JSON dump of the engine's full observable
        state: metrics, retained traces, fault-registry snapshot, dead
        letters, quarantined rules, and the flight-recorder snapshot.
        """
        dead_letters = [{
            "rule": dl.rule_name,
            "error": dl.error,
            "attempts": dl.attempts,
            "mode": dl.work.mode.value,
            "session_id": dl.work.session_id,
        } for dl in self.scheduler.dead_letter_list()]
        with self._lock:
            quarantined = sorted(
                rule.name for rule, __ in self._rules.values()
                if rule.quarantined)
        if json_format:
            import json as _json
            return _json.dumps({
                "metrics": self.metrics_registry.snapshot(),
                "traces": [trace.to_dict() for trace in self.traces()],
                "faults": self.faults.stats(),
                "dead_letters": dead_letters,
                "quarantined_rules": quarantined,
                "flight": self.flight.snapshot(),
            }, indent=2)
        parts = [self.metrics_registry.dump_text()]
        for trace in self.traces():
            parts.append(trace.format())
        fault_stats = self.faults.stats()
        parts.append("faults (enabled={enabled})\n  {summary}".format(
            enabled=fault_stats.get("enabled"),
            summary=", ".join(f"{k}={v}" for k, v in fault_stats.items()
                              if k != "enabled") or "none"))
        if dead_letters:
            parts.append("dead letters\n" + "\n".join(
                f"  {dl['rule']} [{dl['mode']}] attempts={dl['attempts']} "
                f"session={dl['session_id']}: {dl['error']}"
                for dl in dead_letters))
        else:
            parts.append("dead letters\n  none")
        parts.append("quarantined rules\n  "
                     + (", ".join(quarantined) if quarantined else "none"))
        flight = self.flight.snapshot()
        parts.append("flight recorder\n  "
                     + " ".join(f"{k}={v}" for k, v in flight.items()))
        return "\n\n".join(parts)

    #: The frozen top-level key set of :meth:`statistics`.  Every key is
    #: present from construction onward; additions require a new entry
    #: here (tests assert equality, catching accidental drift).
    STATISTICS_KEYS = frozenset({
        "transactions", "scheduler", "events", "events_detected",
        "semi_composed_pending", "composers", "eca_managers", "storage",
        "rules", "queries", "observability", "sessions", "faults",
        "flight", "telemetry", "concurrency", "shards", "wal", "server",
    })

    #: The frozen top-level key set of :meth:`concurrency_stats` — the
    #: curated, stable introspection surface over the striped lock
    #: manager, the WAL group-commit machinery, and the lazy history
    #: merge.  Same contract as :attr:`STATISTICS_KEYS`: tests assert
    #: equality, so additions are deliberate API changes.
    CONCURRENCY_STATS_KEYS = frozenset({
        "locks", "wal", "history", "config",
    })

    def statistics(self) -> dict[str, Any]:
        """A consistent snapshot of every subsystem's counters.

        The key set is exactly :attr:`STATISTICS_KEYS`, and every value is
        well-defined before the first transaction (zeros/empty sections).
        All values come from always-maintained plain attributes, so they
        are correct whether or not ``config.observability`` is enabled;
        the ``observability`` section carries the metrics snapshot (null
        when disabled).

        Keys:

        * ``transactions`` — begun/committed/aborted counts;
        * ``scheduler`` — firing counts per policy (immediate,
          deferred_enqueued, deferred_run, detached_run, ...);
        * ``events`` — detected/composed/consumed plus pending
          semi-composed occurrences;
        * ``events_detected``, ``semi_composed_pending`` — flat aliases
          retained for backward compatibility;
        * ``composers`` — composer count, emissions, live graph instances;
        * ``eca_managers`` — primitive/composite manager counts and
          occurrences handled;
        * ``storage`` — pages, WAL and buffer-pool counters;
        * ``rules`` — registered rule count;
        * ``queries`` — query-processor counters;
        * ``sessions`` — sessions created/active on this engine;
        * ``faults`` — fault-registry snapshot (enabled, seed, injection
          totals per point; inert zeros when fault injection is off);
        * ``flight`` — flight-recorder snapshot (enabled, capacity,
          recorded/retained/dropped record counts, dumps written);
        * ``telemetry`` — export-pipeline counters (queued, enqueued,
          exported, dropped, export_errors);
        * ``concurrency`` — :meth:`concurrency_stats` (striped lock
          waits, WAL group commit, history merge lag);
        * ``wal`` — :meth:`wal_statistics`: the write-ahead log's live
          view plus robustness counters (lenient-recovery truncations,
          unknown record types skipped, composer-checkpoint bookkeeping
          and restore fallbacks);
        * ``shards`` — :meth:`shard_stats` (topology plus per-shard
          commit/event/storage counters; a single-kernel engine reports
          itself as a one-shard topology);
        * ``server`` — :meth:`server_stats`: the attached network front
          end's connection/request counters (``{"enabled": False, ...}``
          when no server is attached);
        * ``observability`` — ``metrics().snapshot()``.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        composers = self.events.composers()
        primitive = self.events.primitive_managers()
        composite = self.events.composite_managers()
        # Lock-free reads throughout: the counters are either ints (atomic
        # under the GIL) or SeqlockCounters whose snapshot() retries past
        # in-flight writers, so a statistics() poller never blocks a
        # committing session on self._lock.
        sessions = {"created": self._sessions_created,
                    "active": len(self._sessions)}
        scheduler = self._stats_view(self.scheduler.stats)
        scheduler["errors_depth"] = len(self.scheduler.errors)
        scheduler["errors_dropped"] = self.scheduler.errors.dropped
        scheduler["dead_letters"] = self.scheduler.dead_letter_count()
        scheduler["dead_letters_dropped"] = \
            self.scheduler.dead_letters_dropped
        scheduler["quarantined_rules"] = sorted(
            rule.name for rule, __ in list(self._rules.values())
            if rule.quarantined)
        return {
            "transactions": self._stats_view(self.tx_manager.stats),
            "scheduler": scheduler,
            "events": {
                "detected": self.events.events_detected,
                "composed": sum(c.emitted for c in composers),
                "consumed": sum(c.consumed for c in composers),
                "semi_composed_pending":
                    self.events.pending_semi_composed(),
            },
            "events_detected": self.events.events_detected,
            "semi_composed_pending": self.events.pending_semi_composed(),
            "composers": {
                "count": len(composers),
                "emitted": sum(c.emitted for c in composers),
                "graph_instances":
                    sum(c.graph_instance_count() for c in composers),
            },
            "eca_managers": {
                "primitive": len(primitive),
                "composite": len(composite),
                "handled": sum(m.handled for m in primitive)
                + sum(m.handled for m in composite),
            },
            "storage": self.storage.stats(),
            "rules": len(self._rules),
            "queries": dict(self.query_processor.stats),
            "sessions": sessions,
            "faults": self.faults.stats(),
            "flight": self.flight.snapshot(),
            "telemetry": self.telemetry_pipeline.stats(),
            "concurrency": self.concurrency_stats(),
            "wal": self.wal_statistics(),
            "shards": self.shard_stats(),
            "server": self.server_stats(),
            "observability": self.metrics_registry.snapshot(),
        }

    def wal_statistics(self) -> dict[str, Any]:
        """The WAL's live view plus durable-detection robustness
        counters: lenient-recovery truncations, unknown-but-well-framed
        record types scanned past, composer checkpoints written and
        recovered, and restore/fallback outcomes."""
        stats = self.storage.wal_stats()
        stats["composer_checkpoint_fallbacks"] = \
            self.events.composer_checkpoint_fallbacks
        stats["composer_restores"] = self.events.composer_restores
        stats["composer_checkpoints_emitted"] = \
            self.events.composer_checkpoints_emitted
        return stats

    def composer_stats(self) -> dict[str, Any]:
        """Durable composite-event detection view (admin ``/composer``):
        per-composer half-matched group counts plus checkpoint/restore
        counters and the last durable checkpoint LSN."""
        stats = self.events.composer_stats()
        wal = self.storage.wal_stats()
        stats["last_checkpoint_lsn"] = wal.get(
            "last_composer_checkpoint_lsn", 0)
        stats["checkpoints_written"] = wal.get(
            "composer_checkpoints_written", 0)
        return stats

    @staticmethod
    def _stats_view(stats: dict) -> dict[str, Any]:
        """A coherent copy of a counters dict: seqlock snapshot when the
        counters are :class:`~repro.obs.metrics.SeqlockCounters`, plain
        copy otherwise."""
        snapshot = getattr(stats, "snapshot", None)
        return snapshot() if snapshot is not None else dict(stats)

    def concurrency_stats(self) -> dict[str, Any]:
        """The curated concurrency introspection surface.

        The key set is exactly :attr:`CONCURRENCY_STATS_KEYS`; every value
        is well-defined from construction onward.  This promotes the
        previously ad-hoc ``LockManager.snapshot()`` /
        ``WriteAheadLog.stats()`` / history-merge counters into one stable
        dict, also served under ``statistics()["concurrency"]`` and at
        ``/locks`` on the admin endpoint.

        Keys:

        * ``locks`` — stripe count, total waits/deadlocks/timeouts, and
          per-stripe wait-latency aggregates (count, p50/p99/max in ms);
        * ``wal`` — the write-ahead log's stats (group-commit machinery,
          queue depth, LSNs);
        * ``history`` — global-history merge machinery: lazy flag, merge
          operations run, deferred requests, current merge lag (pending
          un-applied merges), merged entry count;
        * ``config`` — the effective :class:`~repro.config.ConcurrencyConfig`
          knob values.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        concurrency = self.config.concurrency
        return {
            "locks": self.locks.wait_stats(),
            "wal": self.storage.wal_stats(),
            "history": self.events.global_history.stats(),
            "config": {
                "lock_stripes": concurrency.lock_stripes,
                "history_segments": concurrency.history_segments,
                "seqlock_stats": concurrency.seqlock_stats,
                "lazy_history_merge": concurrency.lazy_history_merge,
            },
        }

    def shard_summary(self) -> dict[str, Any]:
        """This kernel's row in a shard topology listing: identity, OID
        allocation position, and the per-shard hot counters (transactions,
        events, storage, WAL)."""
        tx_stats = self._stats_view(self.tx_manager.stats)
        return {
            "shard_id": self.shard_id,
            "directory": self.directory,
            "next_oid": self.dictionary.allocator.next_value,
            "objects": self.storage.object_count(),
            "transactions": tx_stats,
            "events_detected": self.events.events_detected,
            "rules": len(self._rules),
            "wal": self.storage.wal_stats(),
        }

    def shard_stats(self) -> dict[str, Any]:
        """The shard-topology introspection surface (also served at
        ``/shards`` on the admin endpoint).  A plain single-kernel engine
        reports itself as a one-shard topology so callers never need to
        special-case; :class:`~repro.core.sharding.ShardedEngine`
        overrides this with the real N-shard view."""
        return {
            "count": self.shard_map.shard_count,
            "oid_range_size": self.shard_map.range_size,
            "wal_ship": False,
            "per_shard": [self.shard_summary()],
        }

    # -- self-healing ----------------------------------------------------

    def dead_letters(self) -> list[Any]:
        """Detached work that failed permanently (retries exhausted or the
        rule quarantined), newest last.  Each entry is a
        :class:`~repro.core.scheduler.DeadLetter`."""
        return self.scheduler.dead_letter_list()

    def requeue(self, index: Optional[int] = None) -> int:
        """Re-execute dead-lettered work (all of it, or one entry by
        index) with a fresh retry budget; returns the number requeued.
        Runs under this engine's scope like :meth:`drain_detached`."""
        with self.sentry_registry.bound():
            return self.scheduler.requeue_dead_letters(index)

    def checkpoint(self) -> None:
        self.storage.checkpoint()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut the engine down: cancel timers, drain resolvable detached
        work, stop the worker pools, cancel sentry subscriptions, and
        close the storage manager (flushing the buffer pool).

        Idempotent — a second call returns immediately.  An attached
        network front end is drained and closed first — while the engine
        is still open, so wire clients' in-flight transactions can
        finish — then open sessions are closed.
        """
        server = self._server
        if server is not None and not self._closed:
            try:
                server.close()          # detaches itself when done
            except Exception:
                pass
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._server = None
            open_sessions = list(self._sessions)
        _LIVE_ENGINES.discard(self)
        if self.admin is not None:
            self.admin.close()
        for session in open_sessions:
            session.close()
        self.temporal.cancel_all()
        try:
            # Give resolvable detached work a last chance to run rather
            # than silently dropping it (synchronous mode).
            with self.sentry_registry.bound():
                self.scheduler.drain_detached()
        except Exception:
            pass
        self.scheduler.close()
        self.events.close()
        self.change.close()
        self.persistence.detach()
        self.locks.clear()
        # The telemetry pipeline drains before storage closes so a final
        # flush can still observe a consistent engine.
        self.telemetry_pipeline.close()
        try:
            # Final composer checkpoint: half-matched state present at a
            # clean shutdown survives to the next start (storage.close()
            # flushes the WAL right after).
            self.events.emit_composer_checkpoints()
        except Exception:
            pass
        self.storage.close()

    def __enter__(self) -> "ReachEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # An exception unwinding through the engine scope is an unhandled
        # abort: preserve the flight ring before teardown loses it.
        if exc_type is not None and not self._closed:
            try:
                self.flight.record("engine.abort", error=repr(exc))
                self.flight.dump(reason="unhandled-abort")
            except Exception:
                pass
        self.close()
