"""The sharded engine: N kernels, one event space, one OID space.

This is the first change where "the engine" stops being one object.  A
:class:`ShardedEngine` owns N :class:`~repro.core.engine.ReachEngine`
kernels, each with its own storage manager and WAL, lock table,
transaction manager, histories, scheduler and temporal source — and
splits the global concerns explicitly:

* **objects** partition by OID block: every shard's data dictionary
  allocates from a :class:`~repro.oodb.oid.ShardedOIDAllocator`, so the
  pure :func:`repro.oodb.oid.route` function answers ownership with no
  shared state (see :class:`~repro.oodb.address_space.ShardMap`);
* **events** stay global: all shards share one scoped
  :class:`~repro.oodb.sentry.SentryRegistry`, every event spec has one
  *home* shard (stable content hash of its key) where its detector and
  ECA-manager live, and composites whose leaves home on different
  shards are wired through the :class:`CrossShardEventBus`.  Ordering
  needs no protocol: ``EventOccurrence.seq`` is stamped at detection
  from one process-global counter — the PR 6 lazy-merge invariant —
  so occurrences from different shards already carry a total order;
* **transactions** group, not span: a
  :class:`~repro.core.session.ShardedSession` transaction begins one
  member per shard and registers the member-id set with the engine,
  which every shard's event service consults
  (``EventService.tx_group_resolver``) so same-transaction composite
  scope treats all members as one transaction.  Commit is per-member
  in shard order — explicitly *not* atomic across shards;
* **durability** scales out: each shard's group-commit WAL stream can
  be shipped to a warm read replica
  (:class:`~repro.storage.replication.ReadReplica`), bounded by the
  acked (fsynced) prefix.

``ShardingConfig(shards=N)`` under ``ExecutionConfig`` turns this on;
``ReachDatabase`` builds the coordinator transparently and serves
sharded sessions from ``create_session``.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional, Type, Union

from repro.clock import Clock, VirtualClock
from repro.config import ExecutionConfig
from repro.core.algebra import CompositeEventSpec
from repro.core.coupling import CouplingMode
from repro.core.engine import ReachEngine
from repro.core.events import (
    EventOccurrence,
    EventSpec,
    SignalEventSpec,
    TemporalEventSpec,
)
from repro.core.rule_builder import RuleBuilder
from repro.core.rules import Action, Condition, Rule
from repro.core.session import ShardedSession
from repro.errors import ObjectNotFoundError, RuleDefinitionError
from repro.obs.admin import AdminServer
from repro.obs.tracer import merge_traces
from repro.oodb.address_space import ShardMap
from repro.oodb.oid import OID
from repro.oodb.sentry import SentryRegistry
from repro.storage.replication import ReadReplica, WALShipper


class CrossShardEventBus:
    """Wires leaf detections on one shard into composers on another.

    The bus holds no queue and adds no thread: a connection is a
    listener on the leaf's primitive ECA-manager (on the leaf's home
    shard) that calls ``feed`` on the composite's manager (on the
    composite's home shard) directly, in the detecting thread — the
    same synchronous propagation a single kernel uses, so coupling-mode
    semantics are unchanged.  Because occurrences carry their global
    detection-time ``seq``, the receiving composer observes a correctly
    ordered (if interleaved) stream without any cross-shard handshake.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._connections: list[dict[str, Any]] = []
        self.forwarded = 0
        self.local = 0

    def connect(self, primitive_manager: Any, src_shard: int,
                dst_shard: int, composite_manager: Any) -> None:
        """Deliver ``primitive_manager``'s occurrences (home
        ``src_shard``) to ``composite_manager`` (home ``dst_shard``)."""
        cross = src_shard != dst_shard

        def forward(occ: EventOccurrence) -> None:
            if cross:
                self.forwarded += 1
            else:
                self.local += 1
            composite_manager.feed(occ)

        primitive_manager.add_listener(forward)
        with self._lock:
            self._connections.append({
                "leaf": str(primitive_manager.key),
                "src_shard": src_shard,
                "dst_shard": dst_shard,
                "composite": composite_manager.composer.name,
                "cross_shard": cross,
            })

    def stats(self) -> dict[str, Any]:
        with self._lock:
            connections = list(self._connections)
        return {
            "connections": len(connections),
            "cross_shard_connections":
                sum(1 for c in connections if c["cross_shard"]),
            "forwarded": self.forwarded,
            "local": self.local,
            "wiring": connections,
        }


def _merge_stats(values: list[Any]) -> Any:
    """Recursively merge per-shard statistics: numbers sum, dicts merge
    key-by-key, lists concatenate, everything else keeps the first
    shard's value (configs, paths, flags)."""
    first = values[0]
    if isinstance(first, bool):
        return first
    if isinstance(first, (int, float)):
        return sum(v for v in values if isinstance(v, (int, float)))
    if isinstance(first, dict):
        merged: dict[str, Any] = {}
        for value in values:
            if not isinstance(value, dict):
                continue
            for key in value:
                if key in merged:
                    continue
                present = [v[key] for v in values
                           if isinstance(v, dict) and key in v]
                merged[key] = _merge_stats(present)
        return merged
    if isinstance(first, list):
        out: list[Any] = []
        for value in values:
            if isinstance(value, list):
                out.extend(value)
        return out
    return first


class ShardedEngine:
    """Coordinator over N OID-range-sharded :class:`ReachEngine` kernels.

    Exposes the engine surface :class:`~repro.core.database.ReachDatabase`
    and the admin endpoint expect; single-object subsystem attributes
    (``tx_manager``, ``storage``, ``locks``, ...) delegate to shard 0 so
    existing introspection keeps working, while the genuinely multi-shard
    surfaces (``statistics()``, ``shard_stats()``, sessions, rules,
    events) aggregate or route across the topology.

    Args:
        directory: root directory; shard *k* lives in
            ``<directory>/shard-k`` (replicas under
            ``<directory>/shard-k/replica``).
        config: execution configuration; ``config.sharding`` supplies
            shard count, OID block width and WAL-shipping knobs.
        clock: shared time source for every shard.
        buffer_capacity: per-shard buffer-pool frames.
    """

    def __init__(self, directory: Optional[str] = None,
                 config: Optional[ExecutionConfig] = None,
                 clock: Optional[Clock] = None,
                 buffer_capacity: int = 128):
        import tempfile

        self.config = config or ExecutionConfig()
        sharding = self.config.sharding
        self.clock = clock or VirtualClock()
        if directory is None:
            directory = tempfile.mkdtemp(prefix="reach-sharded-")
        self.directory = directory
        self.shard_count = sharding.shards
        self.shard_map = ShardMap(shard_count=self.shard_count,
                                  range_size=sharding.oid_range_size)
        #: one scoped registry shared by every shard: a single session
        #: binding covers the whole topology, and a spec's detector —
        #: installed only on its home shard — sees every thread bound to
        #: any of this engine's sessions, wherever the object lives.
        self.sentry_registry = SentryRegistry(
            scoped=True, name=f"sharded-{id(self):x}")

        # Shards must not each open an admin port or append to the same
        # telemetry file; the coordinator owns both concerns.
        shard_config = dataclasses.replace(
            self.config, admin_port=None, telemetry_jsonl=None)
        self.shards: list[ReachEngine] = [
            ReachEngine(directory=os.path.join(directory, f"shard-{sid}"),
                        config=shard_config, clock=self.clock,
                        buffer_capacity=buffer_capacity,
                        sentry_registry=self.sentry_registry,
                        shard_id=sid, shard_map=self.shard_map)
            for sid in range(self.shard_count)]

        self.bus = CrossShardEventBus()
        #: member tx id -> frozenset of all member ids of its sharded tx
        self._tx_groups: dict[int, frozenset[int]] = {}
        self._group_lock = threading.Lock()
        resolver: Callable[[int], Optional[frozenset[int]]] = \
            self._tx_groups.get
        for shard in self.shards:
            shard.events.tx_group_resolver = resolver

        #: rule name -> (rule, home shard engine)
        self._rules: dict[str, tuple[Rule, ReachEngine]] = {}
        #: composite spec keys whose leaves are already bus-wired
        self._wired: set[Any] = set()
        self._sessions: list[ShardedSession] = []
        self._sessions_created = 0
        self._placement = itertools.count()
        self._lock = threading.RLock()
        self._closed = False

        self.replicas: list[ReadReplica] = []
        self.shippers: list[WALShipper] = []
        if sharding.wal_ship:
            for shard in self.shards:
                replica = ReadReplica(
                    shard.directory,
                    os.path.join(shard.directory, "replica"))
                self.replicas.append(replica)
                self.shippers.append(WALShipper(
                    shard.storage, replica,
                    interval=sharding.wal_ship_interval))

        self.admin: Optional[AdminServer] = None
        if self.config.admin_port is not None:
            self.admin = AdminServer(self, port=self.config.admin_port)

        # Duck-typed network front end handle (see ReachEngine._server):
        # a ReachServer over a sharded topology attaches here, to the
        # coordinator, never to an individual shard.
        self._server: Optional[Any] = None

    # ------------------------------------------------------------------
    # Shard-0 delegation: the single-object subsystem surface the facade
    # and admin endpoint wire up.  Aggregate views exist alongside
    # (statistics, shard_stats); these keep one canonical object per
    # attribute for callers that predate sharding.
    # ------------------------------------------------------------------

    @property
    def metrics_registry(self):
        return self.shards[0].metrics_registry

    @property
    def faults(self):
        return self.shards[0].faults

    @property
    def tracer(self):
        return self.shards[0].tracer

    @property
    def flight(self):
        return self.shards[0].flight

    @property
    def telemetry_pipeline(self):
        return self.shards[0].telemetry_pipeline

    @property
    def meta(self):
        return self.shards[0].meta

    @property
    def locks(self):
        return self.shards[0].locks

    @property
    def tx_manager(self):
        return self.shards[0].tx_manager

    @property
    def storage(self):
        return self.shards[0].storage

    @property
    def dictionary(self):
        return self.shards[0].dictionary

    @property
    def active_space(self):
        return self.shards[0].active_space

    @property
    def passive_space(self):
        return self.shards[0].passive_space

    @property
    def persistence(self):
        return self.shards[0].persistence

    @property
    def change(self):
        return self.shards[0].change

    @property
    def indexes(self):
        return self.shards[0].indexes

    @property
    def query_processor(self):
        return self.shards[0].query_processor

    @property
    def scheduler(self):
        return self.shards[0].scheduler

    @property
    def events(self):
        return self.shards[0].events

    @property
    def rule_pm(self):
        return self.shards[0].rule_pm

    @property
    def temporal(self):
        return self.shards[0].temporal

    @property
    def history(self):
        return self.shards[0].history

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_of(self, oid: Union[OID, int]) -> int:
        return self.shard_map.shard_of(oid)

    def shard_for_key(self, key: Any) -> int:
        return self.shard_map.shard_of_key(key)

    def shard_for(self, target: Union[OID, int]) -> ReachEngine:
        return self.shards[self.shard_of(target)]

    def owning_shard(self, obj: Any) -> Optional[int]:
        """The shard where ``obj`` is resident, or ``None``."""
        for sid, shard in enumerate(self.shards):
            if shard.active_space.oid_of(obj) is not None:
                return sid
        return None

    # ------------------------------------------------------------------
    # Sessions and scope
    # ------------------------------------------------------------------

    def create_session(self, name: Optional[str] = None,
                       thread_affine: bool = False,
                       shards: Optional[list[int]] = None) -> ShardedSession:
        """Open a :class:`~repro.core.session.ShardedSession`.

        ``thread_affine`` is accepted for signature compatibility and
        ignored: a sharded session always owns explicit per-shard
        contexts (per-thread default stacks cannot span shards).
        ``shards=[...]`` restricts the session to a subset of shards.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("engine is closed")
            self._sessions_created += 1
            session = ShardedSession(self, name=name, shards=shards)
            self._sessions.append(session)
        return session

    def sessions(self) -> list[ShardedSession]:
        with self._lock:
            return list(self._sessions)

    def _forget_session(self, session: ShardedSession) -> None:
        with self._lock:
            if session in self._sessions:
                self._sessions.remove(session)

    # ------------------------------------------------------------------
    # Network front end registration (duck-typed; see ReachEngine)
    # ------------------------------------------------------------------

    def attach_server(self, server: Any) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError("engine is closed")
            self._server = server

    def detach_server(self, server: Any) -> None:
        with self._lock:
            if self._server is server:
                self._server = None

    def server_stats(self) -> dict[str, Any]:
        server = self._server
        if server is None:
            return {"enabled": False, "connections": {"active": 0},
                    "requests": {"served": 0}}
        return server.stats()

    @contextmanager
    def activate(self, context: Any = None) -> Iterator["ShardedEngine"]:
        """Bind the shared sentry scope (and optionally a shard-0
        transaction context) to the calling thread."""
        if context is not None:
            with self.shards[0].tx_manager.activate(context):
                with self.sentry_registry.bound():
                    yield self
        else:
            with self.sentry_registry.bound():
                yield self

    # ------------------------------------------------------------------
    # Transaction groups (cross-shard composite scope)
    # ------------------------------------------------------------------

    def register_tx_group(self, ids: frozenset[int]) -> None:
        with self._group_lock:
            for tx_id in ids:
                self._tx_groups[tx_id] = ids

    def unregister_tx_group(self, ids: frozenset[int]) -> None:
        """Forget a finished sharded transaction's member group and sweep
        its single-tx composition graphs on every shard (the sharded
        analogue of the per-transaction-EOT discard, Section 3.3: member
        EOTs cannot do it — members end one at a time while later members
        may still raise events for the group)."""
        with self._group_lock:
            for tx_id in ids:
                self._tx_groups.pop(tx_id, None)
        for shard in self.shards:
            for manager in shard.events.composite_managers():
                manager.composer.on_group_end(ids)

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------

    def register_class(self, cls: Type, monitor_state: bool = True) -> Type:
        """Register ``cls`` on every shard.

        Types must resolve everywhere (fetches deserialize on the owning
        shard) and every shard's change PM monitors the class — dirty
        marking then self-routes by residency: only the shard whose
        active space holds the written object reacts to the shared
        registry's state notification.
        """
        for shard in self.shards:
            shard.register_class(cls, monitor_state=monitor_state)
        return cls

    def create_index(self, cls_or_name: Union[Type, str],
                     attribute: str) -> list[Any]:
        """Create the index on every shard (each covers its residents);
        returns the per-shard indexes in shard order."""
        return [shard.create_index(cls_or_name, attribute)
                for shard in self.shards]

    # ------------------------------------------------------------------
    # Objects and queries
    # ------------------------------------------------------------------

    def persist(self, obj: Any, name: Optional[str] = None,
                shard: Optional[int] = None) -> OID:
        """Persist ``obj`` on a shard and return its (routable) OID.

        Placement: an already-resident object stays on its shard; an
        explicit ``shard=`` wins otherwise; new objects round-robin.
        """
        if shard is None:
            shard = self.owning_shard(obj)
        if shard is None:
            shard = next(self._placement) % self.shard_count
        target = self.shards[shard]
        if not target.dictionary.has_type(type(obj).__name__):
            self.register_class(type(obj))
        with self.sentry_registry.bound():
            return target.persist(obj, name)

    def fetch(self, target: Union[str, OID]) -> Any:
        with self.sentry_registry.bound():
            if isinstance(target, OID):
                return self.shard_for(target).fetch(target)
            for shard in self.shards:
                if shard.dictionary.has_name(target):
                    return shard.fetch(target)
            raise ObjectNotFoundError(f"no object named {target!r}")

    def delete(self, target: Union[str, OID, Any]) -> None:
        with self.sentry_registry.bound():
            if isinstance(target, OID):
                self.shard_for(target).delete(target)
                return
            if isinstance(target, str):
                for shard in self.shards:
                    if shard.dictionary.has_name(target):
                        shard.delete(target)
                        return
                raise ObjectNotFoundError(f"no object named {target!r}")
            sid = self.owning_shard(target)
            if sid is None:
                raise ObjectNotFoundError(
                    f"{target!r} is not resident on any shard")
            self.shards[sid].delete(target)

    def query(self, text: str, **params: Any) -> list[Any]:
        """Scatter the query to every shard and concatenate (results come
        back in shard order; no cross-shard sort is applied)."""
        results: list[Any] = []
        for shard in self.shards:
            results.extend(shard.query(text, **params))
        return results

    def flush(self) -> None:
        for shard in self.shards:
            shard.flush()

    # ------------------------------------------------------------------
    # Rules and events
    # ------------------------------------------------------------------

    def rule(self, name: str, event: EventSpec,
             action: Optional[Action] = None,
             condition: Optional[Condition] = None,
             condition_query: Optional[str] = None,
             coupling: CouplingMode = CouplingMode.IMMEDIATE,
             cond_coupling: Optional[CouplingMode] = None,
             action_coupling: Optional[CouplingMode] = None,
             priority: int = 0, critical: bool = False,
             enabled: bool = True, transfer_locks: bool = False,
             description: str = "") -> Rule:
        rule = Rule(name=name, event=event, action=action,
                    condition=condition, condition_query=condition_query,
                    coupling=coupling, cond_coupling=cond_coupling,
                    action_coupling=action_coupling, priority=priority,
                    critical=critical, enabled=enabled,
                    transfer_locks=transfer_locks,
                    description=description)
        return self.register_rule(rule)

    def on(self, event: EventSpec) -> RuleBuilder:
        return RuleBuilder(self, event)

    def register_rule(self, rule: Rule) -> Rule:
        """Home the rule's event on one shard and register it there.

        Primitive events: the manager *and* detector live on the spec's
        home shard (stable key hash), so each occurrence is detected and
        recorded exactly once no matter which shard's objects raise it.

        Composite events: the composer lives on the composite's home
        shard with local leaf wiring suppressed; every leaf's manager is
        created on the *leaf's* home shard and connected through the
        cross-shard event bus.  Table 1 coupling validation and rule
        bookkeeping happen on the home shard exactly as on one kernel.
        """
        with self._lock:
            if rule.name in self._rules:
                raise RuleDefinitionError(
                    f"a rule named {rule.name!r} already exists")
            spec = rule.event
            if isinstance(spec, CompositeEventSpec):
                home_id = self.shard_for_key(spec.key())
                home = self.shards[home_id]
                manager = home.events.composite_manager(
                    spec, wire_leaves=False)
                if spec.key() not in self._wired:
                    for leaf in spec.leaves():
                        leaf_id = self.shard_for_key(leaf.key())
                        leaf_home = self.shards[leaf_id]
                        primitive = leaf_home.events.primitive_manager(leaf)
                        if isinstance(leaf, TemporalEventSpec):
                            leaf_home.temporal.register(leaf)
                        self.bus.connect(primitive, leaf_id, home_id,
                                         manager)
                    self._wired.add(spec.key())
                home.register_rule(rule, manager=manager)
            else:
                home_id = self.shard_for_key(spec.key())
                home = self.shards[home_id]
                home.register_rule(rule)
            self._rules[rule.name] = (rule, home)
            return rule

    def drop_rule(self, name: str) -> None:
        with self._lock:
            rule, home = self._rules.pop(name)
            home.drop_rule(name)

    def get_rule(self, name: str) -> Rule:
        return self._rules[name][0]

    def rules(self) -> list[Rule]:
        with self._lock:
            return [rule for rule, __ in self._rules.values()]

    def rule_home(self, name: str) -> int:
        """The shard id a rule's event is homed on."""
        return self._rules[name][1].shard_id

    def signal(self, name: str, **parameters: Any) -> None:
        """Raise an explicit user signal on the signal's home shard.

        Span stacks are per-shard-tracer thread locals, so a caller's
        open span (an adopted wire request lives on the facade tracer,
        shard 0) is invisible to another shard's tracer; a hop span
        re-pins the caller's trace on the home shard so the detection
        cascade lands in the same tree :meth:`trace` later merges.
        """
        spec = SignalEventSpec(name)
        home = self.shards[self.shard_for_key(spec.key())]
        current = self.tracer.current()
        with self.sentry_registry.bound():
            if current is None or home.tracer is self.tracer:
                home.events.emit(spec, parameters)
            else:
                with home.tracer.span(f"hop:signal {name!r}", "bus",
                                      trace_id=current.trace_id,
                                      parent_id=current.span_id):
                    home.events.emit(spec, parameters)

    def drain_detached(self) -> int:
        with self.sentry_registry.bound():
            return sum(shard.scheduler.drain_detached()
                       for shard in self.shards)

    def dead_letters(self) -> list[Any]:
        letters: list[Any] = []
        for shard in self.shards:
            letters.extend(shard.dead_letters())
        return letters

    def requeue(self, index: Optional[int] = None) -> int:
        if index is not None:
            raise ValueError(
                "per-entry requeue is per-shard; call "
                "engine.shards[k].requeue(index) instead")
        with self.sentry_registry.bound():
            return sum(shard.scheduler.requeue_dead_letters(None)
                       for shard in self.shards)

    def wait_for_composition(self, timeout: float = 10.0) -> None:
        for shard in self.shards:
            shard.wait_for_composition(timeout)

    def collect_garbage(self) -> int:
        return sum(shard.collect_garbage() for shard in self.shards)

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    STATISTICS_KEYS = ReachEngine.STATISTICS_KEYS
    CONCURRENCY_STATS_KEYS = ReachEngine.CONCURRENCY_STATS_KEYS

    def architecture_inventory(self) -> dict[str, list[str]]:
        return self.shards[0].architecture_inventory()

    def metrics(self):
        return self.shards[0].metrics()

    def trace(self, trace_id: Optional[int] = None):
        """One assembled trace across every shard's tracer retention.

        A single trace id spans tracers: the request/detection spans
        live on the leaf's home shard, cross-shard composition on the
        composite's.  Span/trace ids are allocated from process-global
        counters precisely so this merge is well-defined.
        """
        if trace_id is None:
            latest = self.shards[0].trace(None)
            if latest is None:
                return None
            trace_id = latest.trace_id
        return merge_traces(
            shard.trace(trace_id) for shard in self.shards)

    def traces(self):
        """Every retained trace, merged across shards, oldest first."""
        order: list[int] = []
        seen: set[int] = set()
        for shard in self.shards:
            for trace in shard.traces():
                if trace.trace_id not in seen:
                    seen.add(trace.trace_id)
                    order.append(trace.trace_id)
        merged = (self.trace(trace_id) for trace_id in order)
        return [trace for trace in merged if trace is not None]

    def flight_recorder(self):
        return self.shards[0].flight_recorder()

    def telemetry(self):
        return self.shards[0].telemetry()

    @property
    def admin_address(self) -> Optional[tuple[str, int]]:
        return self.admin.address if self.admin is not None else None

    def dump_observability(self, json_format: bool = False) -> str:
        if json_format:
            import json as _json
            return _json.dumps({
                f"shard-{sid}": _json.loads(
                    shard.dump_observability(json_format=True))
                for sid, shard in enumerate(self.shards)}, indent=2)
        return "\n\n".join(
            f"== shard {sid} ==\n{shard.dump_observability()}"
            for sid, shard in enumerate(self.shards))

    def statistics(self) -> dict[str, Any]:
        """The frozen-key snapshot, aggregated over every shard.

        Numeric counters sum across shards, nested sections merge
        recursively; ``rules`` and ``sessions`` report the coordinator's
        own registries (a rule registers on one home shard, a session
        spans all shards — summing would double-count), and ``shards``
        carries the per-shard breakdown plus replication state.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        merged = _merge_stats([shard.statistics()
                               for shard in self.shards])
        with self._lock:
            merged["rules"] = len(self._rules)
            merged["sessions"] = {"created": self._sessions_created,
                                  "active": len(self._sessions)}
        merged["shards"] = self.shard_stats()
        # The front end attaches to the coordinator, not to any shard;
        # the merged per-shard inert stubs would misreport it.
        merged["server"] = self.server_stats()
        return merged

    def concurrency_stats(self) -> dict[str, Any]:
        """The curated concurrency surface, aggregated over shards
        (numeric totals; ``config`` is shared so the first shard's
        values stand for all)."""
        if self._closed:
            raise RuntimeError("engine is closed")
        return _merge_stats([shard.concurrency_stats()
                             for shard in self.shards])

    def wal_statistics(self) -> dict[str, Any]:
        """The ``statistics()["wal"]`` section aggregated over shards
        (counter totals; per-shard detail lives in ``shard_stats``)."""
        if self._closed:
            raise RuntimeError("engine is closed")
        return _merge_stats([shard.wal_statistics()
                             for shard in self.shards])

    def composer_stats(self) -> dict[str, Any]:
        """Durable-detection-state view over the whole topology: the
        per-composer rows concatenate (a composer lives on exactly one
        home shard), counters sum, and ``last_checkpoint_lsn`` reports
        the per-shard maximum — LSNs are per-shard log positions, so a
        sum would be meaningless."""
        if self._closed:
            raise RuntimeError("engine is closed")
        per_shard = [shard.composer_stats() for shard in self.shards]
        merged = _merge_stats(per_shard)
        merged["last_checkpoint_lsn"] = max(
            (stats.get("last_checkpoint_lsn", 0) for stats in per_shard),
            default=0)
        merged["per_shard_checkpoint_lsn"] = [
            stats.get("last_checkpoint_lsn", 0) for stats in per_shard]
        return merged

    def shard_stats(self) -> dict[str, Any]:
        """The topology view served at ``/shards``: per-shard rows plus
        event-bus and replication state."""
        sharding = self.config.sharding
        stats = {
            "count": self.shard_count,
            "oid_range_size": self.shard_map.range_size,
            "wal_ship": sharding.wal_ship,
            "per_shard": [shard.shard_summary() for shard in self.shards],
            "event_bus": self.bus.stats(),
            "tx_groups": len(self._tx_groups),
        }
        if self.replicas:
            stats["replication"] = {
                "replicas": [replica.stats() for replica in self.replicas],
                "shippers": [shipper.stats() for shipper in self.shippers],
            }
        return stats

    def replica(self, shard_id: int) -> ReadReplica:
        """The read replica of ``shard_id`` (requires ``wal_ship``)."""
        if not self.replicas:
            raise RuntimeError("WAL shipping is not enabled "
                               "(ShardingConfig(wal_ship=True))")
        return self.replicas[shard_id]

    def checkpoint(self) -> None:
        """Checkpoint every shard.  With WAL shipping on, each replica
        is drained to the acked prefix first: checkpoint truncates the
        primary log, and records never shipped would otherwise be lost
        to the replica (its seed copy predates them)."""
        for sid, shard in enumerate(self.shards):
            if self.shippers:
                self.shippers[sid]._poll_once()
            shard.checkpoint()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        # An attached front end drains first, against a still-open
        # topology, mirroring ReachEngine.close().
        server = self._server
        if server is not None and not self._closed:
            try:
                server.close()
            except Exception:
                pass
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._server = None
            open_sessions = list(self._sessions)
        if self.admin is not None:
            self.admin.close()
        for session in open_sessions:
            session.close()
        for shipper in self.shippers:
            shipper.stop()
        for shard in self.shards:
            shard.close()
        for replica in self.replicas:
            replica.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"<ShardedEngine {self.shard_count} shards at "
                f"{self.directory!r} {state}>")
