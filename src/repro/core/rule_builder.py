"""Fluent rule definition: ``db.on(event).when(...).do(...).named(...)``.

The keyword form :meth:`~repro.core.database.ReachDatabase.rule` mirrors
the paper's DDL block one argument per clause; the builder reads like the
DDL itself::

    db.on(MethodEventSpec("River", "update_water_level",
                          param_names=("x",))) \
      .when(lambda ctx: ctx["x"] < 37) \
      .do(lambda ctx: reduce_power(ctx)) \
      .coupling(CouplingMode.IMMEDIATE) \
      .priority(5) \
      .named("WaterLevel")

Every clause method returns the builder; :meth:`RuleBuilder.named` is the
terminal operation — it validates the (event category, coupling mode)
combination against Table 1 and registers the rule, exactly as
``db.rule(...)`` would.  Nothing is registered until it is called, so an
abandoned builder has no effect.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.coupling import CouplingMode
from repro.core.events import EventSpec
from repro.core.rules import Action, Condition, Rule

if TYPE_CHECKING:
    from repro.core.database import ReachDatabase

__all__ = ["RuleBuilder"]


class RuleBuilder:
    """Accumulates one rule's clauses; terminal :meth:`named` registers it."""

    def __init__(self, db: "ReachDatabase", event: EventSpec):
        self._db = db
        self._event = event
        self._condition: Optional[Condition] = None
        self._condition_query: Optional[str] = None
        self._action: Optional[Action] = None
        self._coupling = CouplingMode.IMMEDIATE
        self._cond_coupling: Optional[CouplingMode] = None
        self._action_coupling: Optional[CouplingMode] = None
        self._priority = 0
        self._critical = False
        self._enabled = True
        self._transfer_locks = False
        self._description = ""

    # -- condition ---------------------------------------------------------

    def when(self, condition: Condition) -> "RuleBuilder":
        """Set the condition callable (``ctx -> bool``)."""
        self._condition = condition
        return self

    def when_query(self, text: str) -> "RuleBuilder":
        """Set an OQL-subset condition query (true iff non-empty result)."""
        self._condition_query = text
        return self

    # -- action ------------------------------------------------------------

    def do(self, action: Action) -> "RuleBuilder":
        """Set the action callable."""
        self._action = action
        return self

    # -- coupling and firing policy ----------------------------------------

    def coupling(self, mode: CouplingMode) -> "RuleBuilder":
        """E-C and C-A coupling together (the common single-mode case)."""
        self._coupling = mode
        return self

    def cond_coupling(self, mode: CouplingMode) -> "RuleBuilder":
        """E-C coupling alone (split rules)."""
        self._cond_coupling = mode
        return self

    def action_coupling(self, mode: CouplingMode) -> "RuleBuilder":
        """C-A coupling alone (split rules)."""
        self._action_coupling = mode
        return self

    def priority(self, value: int) -> "RuleBuilder":
        self._priority = value
        return self

    def critical(self, flag: bool = True) -> "RuleBuilder":
        """A failing critical rule aborts its triggering transaction."""
        self._critical = flag
        return self

    def disabled(self) -> "RuleBuilder":
        """Register the rule disabled (enable later via ``rule.enabled``)."""
        self._enabled = False
        return self

    def transfer_locks(self, flag: bool = True) -> "RuleBuilder":
        """Exclusive causally dependent mode: claim the trigger's locks."""
        self._transfer_locks = flag
        return self

    def describe(self, text: str) -> "RuleBuilder":
        self._description = text
        return self

    # -- terminal ----------------------------------------------------------

    def named(self, name: str) -> Rule:
        """Validate, register under ``name``, and return the rule."""
        return self._db.rule(
            name, event=self._event, action=self._action,
            condition=self._condition,
            condition_query=self._condition_query,
            coupling=self._coupling,
            cond_coupling=self._cond_coupling,
            action_coupling=self._action_coupling,
            priority=self._priority, critical=self._critical,
            enabled=self._enabled, transfer_locks=self._transfer_locks,
            description=self._description)

    def __repr__(self) -> str:
        return f"<RuleBuilder on {self._event.describe()} (unregistered)>"
