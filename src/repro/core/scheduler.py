"""Rule execution engine: coupling modes, ordering, causal dependencies.

Implements Section 3.2's six coupling modes and Section 6.4's firing
policies:

* **immediate** rules run as subtransactions at the detection point;
* **deferred** rules queue on the triggering transaction and drain at the
  *top-level* EOT (control over deferred execution "resides with the
  transaction policy manager"), ordered by priority with the configured
  tie-break and the optional simple-events-first policy;
* **detached** rules (plain / parallel / sequential / exclusive causally
  dependent) run in new top-level transactions.  In threaded mode they run
  on a worker pool, blocking on the triggering transactions' outcomes
  where the dependency requires it; in synchronous mode they queue and are
  drained once the outcomes are known — the first-prototype strategy of
  mapping parallel execution onto an ordered firing sequence.

Parameter passing across the detached boundary follows Section 3.2:
references to persistent objects pass as references, transient objects
pass *by value* (a shallow copy detached from the original's identity).

Rule failures abort the rule's own subtransaction and are recorded; a rule
marked ``critical`` additionally aborts the triggering transaction.
"""

from __future__ import annotations

import copy
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Optional

from repro.config import ExecutionConfig, TieBreakPolicy
from repro.core.coupling import CouplingMode
from repro.core.events import EventOccurrence
from repro.core.rules import Rule, RuleContext, sort_for_firing
from repro.errors import RuleExecutionError, TransactionAborted
from repro.faults.registry import NULL_FAULTS, SCHEDULER_WORKER, FaultRegistry
from repro.obs.flight import NULL_FLIGHT, FlightRecorder
from repro.obs.metrics import (
    NULL_METRICS,
    Counters,
    MetricsRegistry,
    SeqlockCounters,
)
from repro.obs.tracer import _NULL_SPAN, NULL_TRACER, Tracer
from repro.oodb.sentry import is_sentried
from repro.oodb.transactions import (
    Transaction,
    TransactionManager,
    TransactionState,
)

#: Execution phases: a 'full' unit evaluates condition then action; an
#: 'action' unit is the action of a rule whose condition already held.
PHASE_FULL = "full"
PHASE_ACTION = "action"


@dataclass
class FiringRecord:
    """One entry of the scheduler's firing log (tests and benchmarks)."""

    rule_name: str
    mode: CouplingMode
    phase: str
    event_seq: int
    outcome: str               # executed | condition_false | skipped | error
    tx_id: Optional[int] = None
    #: the session the triggering transaction belonged to (None for the
    #: legacy thread-affine default or engine-internal work).
    session_id: Optional[int] = None


@dataclass
class DetachedWork:
    """A detached rule execution waiting for its dependencies."""

    rule: Rule
    occ: EventOccurrence
    phase: str
    mode: CouplingMode
    deps: frozenset[int]
    bindings: dict[str, Any]
    depth: int
    #: triggering session, captured at schedule time — the detached
    #: transaction itself runs on a worker/drain thread with no session
    #: bound, so attribution must travel with the work item.
    session_id: Optional[int] = None
    #: execution attempts so far (retry bookkeeping; reset on requeue).
    attempts: int = 0


@dataclass
class DeadLetter:
    """A detached execution that failed permanently.

    Retained (bounded) after retries are exhausted or the rule was
    quarantined, for inspection via ``db.dead_letters()`` and manual
    re-execution via ``db.requeue()``.
    """

    work: DetachedWork
    error: str
    attempts: int

    @property
    def rule_name(self) -> str:
        return self.work.rule.name


class BoundedErrorLog(list):
    """Drop-in replacement for the plain ``scheduler.errors`` list that
    keeps only the most recent ``capacity`` entries; the number discarded
    is surfaced as ``errors_dropped`` in ``db.statistics()``."""

    def __init__(self, capacity: int):
        super().__init__()
        self.capacity = capacity
        self.dropped = 0

    def append(self, item: Any) -> None:
        super().append(item)
        if len(self) > self.capacity:
            excess = len(self) - self.capacity
            del self[:excess]
            self.dropped += excess


class RuleScheduler:
    """Dispatches triggered rules according to their coupling modes."""

    def __init__(self, db: Any, tx_manager: TransactionManager,
                 config: ExecutionConfig,
                 tracer: Tracer = NULL_TRACER,
                 metrics: MetricsRegistry = NULL_METRICS,
                 sentry_registry: Any = None,
                 faults: FaultRegistry = NULL_FAULTS,
                 flight: FlightRecorder = NULL_FLIGHT):
        self.db = db
        self.tx_manager = tx_manager
        self.config = config
        #: the owning engine's sentry registry; worker and drain threads
        #: bind it so rule actions deliver their events to this engine
        #: only (scoped delivery, see :mod:`repro.oodb.sentry`).
        self.sentry_registry = sentry_registry
        self.tracer = tracer
        self.metrics = metrics
        self.flight = flight
        self._observe_latency = metrics.enabled
        self._h_condition = metrics.histogram("rule.condition.latency")
        self._h_action = metrics.histogram("rule.action.latency")
        self._m_fired = {mode: metrics.counter(f"rules.fired.{mode.value}")
                         for mode in CouplingMode}
        self._m_condition_false = metrics.counter("rules.condition_false")
        self._m_errors = metrics.counter("rules.errors")
        self._m_skipped = metrics.counter("rules.skipped")
        self._m_retries = metrics.counter("scheduler.retries")
        self._m_quarantined = metrics.counter("scheduler.quarantined")
        self._m_dead_letters = metrics.counter("scheduler.dead_letters")
        self._fp_worker = faults.point(SCHEDULER_WORKER)
        #: rule name -> "fire:<name>", built lazily; firing is the hot
        #: path, so the span name must not be re-formatted per firing.
        self._fire_span_names: dict[str, str] = {}
        # -- end-to-end detection-latency SLO (signal -> action done) ----
        self._h_detection = metrics.histogram("slo.detection_latency")
        #: (rule name, mode) -> its labelled SLO histogram, built lazily.
        self._slo_histograms: dict[tuple[str, CouplingMode], Any] = {}
        #: session id -> tenant name (or None); resolved once per session
        #: through :attr:`tenant_resolver` and cached — firing is hot.
        self._tenant_cache: dict[Optional[int], Optional[str]] = {}
        self._tenant_slo: dict[str, Any] = {}
        #: optional session-id -> tenant-name hook, wired by the engine;
        #: lets per-tenant SLO series exist without core importing server.
        self.tenant_resolver: Optional[
            Callable[[int], Optional[str]]] = None
        self.errors: BoundedErrorLog = BoundedErrorLog(
            config.error_log_capacity)
        self.firing_log: list[FiringRecord] = []
        self._log_lock = threading.Lock()
        self._pending: list[DetachedWork] = []
        self._pending_lock = threading.Lock()
        self._dead_letters: list[DeadLetter] = []
        self.dead_letters_dropped = 0
        #: seeded backoff jitter so retry timing replays with the fault
        #: schedule it is usually tested against.
        self._retry_rng = random.Random(config.fault_seed)
        #: trigger tx id -> holding family id for EXC-CD lock transfer
        self._lock_reservations: dict[int, int] = {}
        tx_manager.abort_hooks.append(self._on_trigger_abort)
        self._pool: Optional[ThreadPoolExecutor] = None
        if config.threaded:
            self._pool = ThreadPoolExecutor(
                max_workers=config.worker_threads,
                thread_name_prefix="reach-detached")
        counters = {
            "immediate": 0, "deferred_enqueued": 0, "deferred_run": 0,
            "detached_run": 0, "detached_skipped": 0,
            "recursion_limited": 0, "parallel_batches": 0,
            "detached_retries": 0, "dead_lettered": 0, "quarantined": 0,
        }
        # Seqlock-backed counters let db.statistics() readers copy the
        # dict without ever contending with the firing hot path (and
        # make concurrent increments lose-free).
        concurrency = getattr(config, "concurrency", None)
        if concurrency is not None and concurrency.seqlock_stats:
            self.stats: Counters = SeqlockCounters(counters)
        else:
            self.stats = Counters(counters)

    def _bound_scope(self):
        """Bind the owning engine's sentry scope on the calling thread
        (no-op when no scoped registry was injected)."""
        if self.sentry_registry is not None:
            return self.sentry_registry.bound()
        return nullcontext()

    # ------------------------------------------------------------------
    # Entry point from the ECA managers
    # ------------------------------------------------------------------

    def fire_rules(self, rules: list[Rule], occ: EventOccurrence) -> None:
        """Dispatch every enabled rule triggered by ``occ``."""
        runnable = [rule for rule in rules if rule.enabled]
        if not runnable:
            return
        ordered = sort_for_firing(
            runnable,
            newest_first=self.config.tie_break is TieBreakPolicy.NEWEST_FIRST)
        current = self.tx_manager.current()
        depth = current.rule_depth if current is not None else 0
        if depth >= self.config.max_rule_recursion:
            self.stats.inc("recursion_limited")
            session_id = current.session_id if current is not None else None
            for rule in ordered:
                self._log(rule, rule.cond_coupling, PHASE_FULL, occ,
                          "skipped", session_id=session_id)
            return
        immediate_batch: list[Rule] = []
        for rule in ordered:
            mode = rule.cond_coupling
            if mode is CouplingMode.IMMEDIATE:
                immediate_batch.append(rule)
            elif mode is CouplingMode.DEFERRED:
                self._enqueue_deferred(rule, occ, PHASE_FULL)
            else:
                self._schedule_detached(rule, occ, PHASE_FULL, mode, depth)
        if immediate_batch:
            if (self.config.parallel_rules and self.config.threaded
                    and len(immediate_batch) > 1
                    and current is not None):
                self._fire_parallel(immediate_batch, occ, current)
            else:
                for rule in immediate_batch:
                    self._fire_immediate(rule, occ, PHASE_FULL)

    # ------------------------------------------------------------------
    # Immediate
    # ------------------------------------------------------------------

    def _fire_immediate(self, rule: Rule, occ: EventOccurrence,
                        phase: str) -> None:
        """Run ``rule`` as a subtransaction at the detection point."""
        tm = self.tx_manager
        current = tm.current()
        depth = (current.rule_depth if current is not None else 0) + 1
        tx = tm.begin(rule_depth=depth)
        self.stats.inc("immediate")
        self._run_in_tx(rule, occ, phase, tx, CouplingMode.IMMEDIATE)

    def _fire_parallel(self, rules: list[Rule], occ: EventOccurrence,
                       trigger: Transaction) -> None:
        """Run several immediate rules as parallel sibling subtransactions.

        This is the execution model the paper targets once nested
        transactions exist; the thread setup cost it incurs is exactly
        what benchmark E3 compares against ordered sequential firing.
        """
        self.stats.inc("parallel_batches")

        def run_one(rule: Rule) -> None:
            with self._bound_scope():
                tx = self.tx_manager.begin_child_of(
                    trigger, rule_depth=trigger.rule_depth + 1)
                if tx.session_id is None:
                    # The sibling thread has no session bound; attribute
                    # the subtransaction to the triggering session.
                    tx.session_id = trigger.session_id
                self.stats.inc("immediate")
                self._run_in_tx(rule, occ, PHASE_FULL, tx,
                                CouplingMode.IMMEDIATE)

        threads = [threading.Thread(target=run_one, args=(rule,),
                                    name=f"reach-rule-{rule.name}")
                   for rule in rules]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def _run_in_tx(self, rule: Rule, occ: EventOccurrence, phase: str,
                   tx: Transaction, mode: CouplingMode,
                   bindings: Optional[dict[str, Any]] = None) -> None:
        """Run one unit inside an already-begun transaction ``tx``."""
        tm = self.tx_manager
        with self._fire_span(rule, occ, mode, phase, tx) as span:
            try:
                outcome = self._run_unit(rule, occ, phase, tx, mode,
                                         bindings=bindings)
                tm.commit(tx)
                self._note_success(rule)
                self._log(rule, mode, phase, occ, outcome, tx.id,
                          session_id=tx.session_id)
                if span is not None:
                    span.attributes["outcome"] = outcome
            except RuleExecutionError as exc:
                if tx.state is TransactionState.ACTIVE:
                    tm.abort(tx)
                self.errors.append((rule, exc))
                # Immediate/deferred failures count toward quarantine but
                # are never retried: the rule ran in the triggering
                # transaction's scope and its failure already surfaced
                # there (Table 1 restricts retries to detached modes).
                self._note_failure(rule, occ=occ)
                self._log(rule, mode, phase, occ, "error", tx.id,
                          session_id=tx.session_id)
                if span is not None:
                    span.attributes["outcome"] = "error"
                if rule.critical:
                    raise TransactionAborted(
                        f"critical rule {rule.name!r} failed: {exc}") from exc

    def _fire_span(self, rule: Rule, occ: EventOccurrence,
                   mode: CouplingMode, phase: str, tx: Transaction):
        """The scheduler span of one firing (null context when disabled).

        Branching here keeps the disabled path to one attribute check —
        no span-name formatting, no attribute packing.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return _NULL_SPAN
        if occ.trace_id is None and not tracer.active():
            return _NULL_SPAN  # unsampled: skip attribute packing
        name = self._fire_span_names.get(rule.name)
        if name is None:
            name = self._fire_span_names[rule.name] = f"fire:{rule.name}"
        return tracer.span(name, "scheduler", trace_id=occ.trace_id,
                           parent_id=occ.span_id, mode=mode.value,
                           phase=phase, tx=tx.id)

    def _run_unit(self, rule: Rule, occ: EventOccurrence, phase: str,
                  tx: Transaction, mode: CouplingMode,
                  bindings: Optional[dict[str, Any]] = None) -> str:
        """Condition/action evaluation; returns the firing outcome."""
        ctx = RuleContext(
            rule=rule, event=occ, db=self.db,
            bindings=rule.bind(occ) if bindings is None
            else dict(bindings),
            transaction=tx)
        observe = self._observe_latency
        if phase == PHASE_FULL:
            if observe:
                start = perf_counter()
                held = rule.evaluate_condition(ctx)
                self._h_condition.observe(perf_counter() - start)
            else:
                held = rule.evaluate_condition(ctx)
            if not held:
                rule.condition_rejections += 1
                return "condition_false"
            if rule.action_coupling is not rule.cond_coupling:
                # Split rule: the action runs later in its own mode.
                self._dispatch_action_later(rule, occ, ctx)
                rule.fired_count += 1
                return "executed"
        if observe:
            start = perf_counter()
            rule.execute_action(ctx)
            self._h_action.observe(perf_counter() - start)
        else:
            rule.execute_action(ctx)
        rule.fired_count += 1
        return "executed"

    def _dispatch_action_later(self, rule: Rule, occ: EventOccurrence,
                               ctx: RuleContext) -> None:
        # The condition may have reorganized the bindings for the action
        # (the paper's generated Cond function 'reorganizes the argument
        # list'); carry them forward to the later phase.
        mode = rule.action_coupling
        if mode is CouplingMode.DEFERRED:
            self._enqueue_deferred(rule, occ, PHASE_ACTION,
                                   bindings=dict(ctx.bindings))
        else:
            current = self.tx_manager.current()
            depth = current.rule_depth if current is not None else 0
            self._schedule_detached(rule, occ, PHASE_ACTION, mode, depth,
                                    bindings=dict(ctx.bindings))

    # ------------------------------------------------------------------
    # Deferred
    # ------------------------------------------------------------------

    def _enqueue_deferred(self, rule: Rule, occ: EventOccurrence,
                          phase: str,
                          bindings: Optional[dict[str, Any]] = None) -> None:
        # Defer to the *originating* transaction: in threaded mode a
        # composite may complete on a composer thread while the trigger
        # runs elsewhere, so the current-thread transaction is not it.
        tx = None
        for tx_id in occ.tx_ids:
            candidate = self.tx_manager.find_transaction(tx_id)
            if candidate is not None:
                tx = candidate
                break
        if tx is None:
            tx = self.tx_manager.current()
        if tx is None:
            # The trigger already finished (or there never was one): run
            # right away in a fresh transaction (documented relaxation).
            self._fire_immediate(rule, occ, phase)
            return
        tx.deferred_rules.append((rule, occ, phase, bindings))
        self.stats.inc("deferred_enqueued")

    def drain_deferred(self, tx: Transaction) -> int:
        """Run the deferred queue at top-level EOT.

        Control resides with the transaction policy manager here (Section
        6.4): rules run as subtransactions of the committing transaction,
        ordered by priority, tie-break, and optionally simple-events-first.
        Rules enqueued *by* deferred rules are drained too, bounded by the
        recursion limit.
        """
        executed = 0
        rounds = 0
        while tx.deferred_rules:
            rounds += 1
            if rounds > self.config.max_rule_recursion:
                self.stats.inc("recursion_limited")
                tx.deferred_rules.clear()
                break
            entries = list(tx.deferred_rules)
            tx.deferred_rules.clear()
            entries = self._order_deferred(entries)
            for rule, occ, phase, bindings in entries:
                sub = self.tx_manager.begin_child_of(
                    tx, rule_depth=tx.rule_depth + 1)
                if sub.session_id is None:
                    sub.session_id = tx.session_id
                self.stats.inc("deferred_run")
                self._run_in_tx(rule, occ, phase, sub,
                                CouplingMode.DEFERRED, bindings=bindings)
                executed += 1
        return executed

    def _order_deferred(self, entries: list) -> list:
        newest = self.config.tie_break is TieBreakPolicy.NEWEST_FIRST
        rules = [entry[0] for entry in entries]
        ordered_rules = sort_for_firing(
            rules, newest_first=newest,
            simple_events_first=self.config.simple_events_first)
        rank = {id(rule): index
                for index, rule in enumerate(ordered_rules)}
        return sorted(entries, key=lambda entry: rank[id(entry[0])])

    # ------------------------------------------------------------------
    # Detached (+ causal dependencies)
    # ------------------------------------------------------------------

    def _schedule_detached(self, rule: Rule, occ: EventOccurrence,
                           phase: str, mode: CouplingMode, depth: int,
                           bindings: Optional[dict[str, Any]] = None) -> None:
        raw = bindings if bindings is not None else rule.bind(occ)
        work = DetachedWork(rule=rule, occ=occ, phase=phase, mode=mode,
                            deps=occ.tx_ids,
                            bindings=self._detached_bindings(raw),
                            depth=depth + 1,
                            session_id=self._session_of(occ))
        if mode is CouplingMode.EXCLUSIVE_CAUSALLY_DEPENDENT and \
                rule.transfer_locks:
            # Reserve the triggers' locks: if a trigger aborts, its locks
            # move to a holding family instead of being released, and the
            # contingency transaction claims them when it starts
            # (Section 4's resource transfer).
            with self._pending_lock:
                for dep in work.deps:
                    self._lock_reservations[dep] = -dep
        if self._pool is not None:
            self._pool.submit(self._run_detached_blocking, work)
            return
        with self._pending_lock:
            self._pending.append(work)
        self.drain_detached()

    def _session_of(self, occ: EventOccurrence) -> Optional[int]:
        """Session attribution for detached work: the current context's
        session if one is bound, else the session of a (still live)
        triggering transaction."""
        session_id = self.tx_manager.current_session_id()
        if session_id is not None:
            return session_id
        for tx_id in occ.tx_ids:
            candidate = self.tx_manager.find_transaction(tx_id)
            if candidate is not None and candidate.session_id is not None:
                return candidate.session_id
        return None

    def _on_trigger_abort(self, tx: Transaction) -> None:
        """Abort hook: park a reserved trigger's locks before release."""
        with self._pending_lock:
            reserved = self._lock_reservations.get(tx.id)
        if reserved is not None:
            self.tx_manager.locks.transfer(tx.family_id, reserved)

    def _claim_reserved_locks(self, work: DetachedWork,
                              tx: Transaction) -> None:
        for dep in work.deps:
            with self._pending_lock:
                reserved = self._lock_reservations.pop(dep, None)
            if reserved is not None:
                self.tx_manager.locks.transfer(reserved, tx.family_id)

    def _drop_reservations(self, work: DetachedWork) -> None:
        with self._pending_lock:
            for dep in work.deps:
                reserved = self._lock_reservations.pop(dep, None)
                if reserved is not None:
                    self.tx_manager.locks.release_all(reserved)

    def _detached_bindings(self,
                           raw: dict[str, Any]) -> dict[str, Any]:
        """Apply the parameter-passing rule of Section 3.2."""
        persistence = getattr(self.db, "persistence", None)
        bindings: dict[str, Any] = {}
        for name, value in raw.items():
            if is_sentried(type(value)) and persistence is not None and \
                    not persistence.is_persistent(value):
                # Transient object: pass by value (shallow copy detaches
                # it from the originating transaction's workspace).
                bindings[name] = copy.copy(value)
            else:
                bindings[name] = value
        return bindings

    # -- threaded execution -------------------------------------------------

    def _run_detached_blocking(self, work: DetachedWork) -> None:
        """Worker-thread body enforcing the causal dependencies."""
        try:
            with self._bound_scope():
                # Armed worker-death faults land here, inside the catch-all,
                # so a dead worker is recorded instead of vanishing.
                self._fp_worker.hit(rule=work.rule.name)
                if work.mode is CouplingMode.SEQUENTIAL_CAUSALLY_DEPENDENT:
                    if not self._await_outcomes(work,
                                                TransactionState.COMMITTED):
                        self._skip(work)
                        return
                    self._execute_detached(work)
                elif work.mode is CouplingMode.EXCLUSIVE_CAUSALLY_DEPENDENT:
                    if not self._await_outcomes(work,
                                                TransactionState.ABORTED):
                        self._skip(work)
                        return
                    self._execute_detached(work)
                elif work.mode is CouplingMode.PARALLEL_CAUSALLY_DEPENDENT:
                    self._execute_detached(
                        work,
                        before_commit=lambda: self._await_outcomes(
                            work, TransactionState.COMMITTED))
                else:  # plain detached
                    self._execute_detached(work)
        except BaseException as exc:  # worker threads must not die silently
            self.errors.append((work.rule, exc))
            self._log(work.rule, work.mode, work.phase, work.occ, "error",
                      session_id=work.session_id)

    def _await_outcomes(self, work: DetachedWork,
                        wanted: TransactionState) -> bool:
        """True iff *all* dependency transactions reached ``wanted``."""
        for tx_id in work.deps:
            outcome = self.tx_manager.wait_for_outcome(
                tx_id, timeout=self.config.detached_start_timeout)
            if outcome is not wanted:
                return False
        return True

    # -- synchronous execution ------------------------------------------------

    def drain_detached(self) -> int:
        """Synchronous mode: run queued detached work whose dependencies
        are all decided, provided no transaction is active on this thread
        (a new top-level transaction could deadlock with it otherwise)."""
        if self.tx_manager.current() is not None:
            return 0
        executed = 0
        while True:
            work = self._take_ready()
            if work is None:
                return executed
            with self._bound_scope():
                self._run_detached_resolved(work)
            executed += 1

    def _take_ready(self) -> Optional[DetachedWork]:
        with self._pending_lock:
            for index, work in enumerate(self._pending):
                if all(self.tx_manager.outcome_of(dep) is not None
                       for dep in work.deps):
                    return self._pending.pop(index)
        return None

    def _run_detached_resolved(self, work: DetachedWork) -> None:
        """Run one work item whose dependency outcomes are all known."""
        outcomes = {self.tx_manager.outcome_of(dep) for dep in work.deps}
        if work.mode in (CouplingMode.PARALLEL_CAUSALLY_DEPENDENT,
                         CouplingMode.SEQUENTIAL_CAUSALLY_DEPENDENT):
            if outcomes - {TransactionState.COMMITTED}:
                self._skip(work)
                return
        elif work.mode is CouplingMode.EXCLUSIVE_CAUSALLY_DEPENDENT:
            if outcomes - {TransactionState.ABORTED}:
                self._skip(work)
                return
        self._execute_detached(work)

    def _execute_detached(self, work: DetachedWork,
                          before_commit=None) -> None:
        """Run the rule in a new top-level transaction, retrying failures.

        A failed attempt retries in a fresh transaction with exponential
        backoff and seeded jitter, up to ``detached_max_retries`` times;
        permanently failed work is dead-lettered.  Only detached modes
        reach this path, and of those an exclusive causally dependent
        rule with lock transfer never retries: its inherited locks were
        released when the first attempt aborted, so a retry would run
        with weaker guarantees than the contingency plan assumed.
        """
        rule = work.rule
        retries_allowed = self.config.detached_max_retries
        if work.mode is CouplingMode.EXCLUSIVE_CAUSALLY_DEPENDENT and \
                rule.transfer_locks:
            retries_allowed = 0
        while True:
            work.attempts += 1
            try:
                self._attempt_detached(work, before_commit)
                self._note_success(rule)
                return
            except Exception as exc:
                failure = exc
            self.errors.append((rule, failure))
            quarantined = self._note_failure(rule, occ=work.occ)
            if not quarantined and work.attempts <= retries_allowed:
                self.stats.inc("detached_retries")
                self._m_retries.inc()
                # The retry (backoff included) is a span of its own so a
                # trace tree shows each attempt and the waiting between
                # them; it attaches to the originating trace through the
                # occurrence context, exactly like the firing spans.
                with self._retry_span(work) as span:
                    if span is not None:
                        span.attributes["attempt"] = work.attempts
                        span.attributes["error"] = \
                            f"{type(failure).__name__}: {failure}"
                    self._backoff(work.attempts)
                continue
            self._dead_letter(work, failure)
            return

    def _retry_span(self, work: DetachedWork):
        """The span of one detached retry (null context when disabled)."""
        tracer = self.tracer
        if not tracer.enabled:
            return _NULL_SPAN
        occ = work.occ
        return tracer.span(f"retry:{work.rule.name}", "scheduler",
                           trace_id=occ.trace_id, parent_id=occ.span_id,
                           mode=work.mode.value)

    def _attempt_detached(self, work: DetachedWork, before_commit) -> None:
        """One execution attempt in a fresh top-level transaction.

        *Any* exception — not just :class:`RuleExecutionError` — aborts
        the transaction before propagating, so a failed attempt can
        never leak an ACTIVE transaction into the manager.
        """
        tm = self.tx_manager
        tx = tm.begin(nested=False, rule_depth=work.depth)
        if tx.session_id is None:
            # Detached transactions start on worker/drain threads with no
            # session bound; attribute them to the triggering session.
            tx.session_id = work.session_id
        if work.mode is CouplingMode.EXCLUSIVE_CAUSALLY_DEPENDENT and \
                work.rule.transfer_locks:
            self._claim_reserved_locks(work, tx)
        self.stats.inc("detached_run")
        with self._fire_span(work.rule, work.occ, work.mode, work.phase,
                             tx) as span:
            try:
                outcome = self._run_unit(work.rule, work.occ, work.phase,
                                         tx, work.mode,
                                         bindings=work.bindings)
                if before_commit is not None and not before_commit():
                    tm.abort(tx)
                    self._log(work.rule, work.mode, work.phase, work.occ,
                              "skipped", tx.id, session_id=tx.session_id)
                    if span is not None:
                        span.attributes["outcome"] = "skipped"
                    return
                tm.commit(tx)
                self._log(work.rule, work.mode, work.phase, work.occ,
                          outcome, tx.id, session_id=tx.session_id)
                if span is not None:
                    span.attributes["outcome"] = outcome
            except BaseException:
                if tx.state is TransactionState.ACTIVE:
                    tm.abort(tx)
                self._log(work.rule, work.mode, work.phase, work.occ,
                          "error", tx.id, session_id=tx.session_id)
                if span is not None:
                    span.attributes["outcome"] = "error"
                raise

    def _backoff(self, attempt: int) -> None:
        base = self.config.retry_base_delay
        if base <= 0:
            return
        delay = base * (2 ** (attempt - 1))
        delay *= 1.0 + 0.25 * self._retry_rng.random()
        time.sleep(delay)

    # -- self-healing bookkeeping ---------------------------------------------

    def _note_success(self, rule: Rule) -> None:
        rule.consecutive_failures = 0

    def _note_failure(self, rule: Rule,
                      occ: Optional[EventOccurrence] = None) -> bool:
        """Record one failed execution; True iff the rule is quarantined."""
        rule.consecutive_failures += 1
        threshold = self.config.quarantine_threshold
        if threshold is not None and not rule.quarantined and \
                rule.consecutive_failures >= threshold:
            # Circuit breaker: the rule is disabled until an operator
            # clears ``rule.quarantined`` and re-enables it.
            rule.quarantined = True
            rule.enabled = False
            self.stats.inc("quarantined")
            self._m_quarantined.inc()
            if occ is not None and occ.trace_id is not None:
                self.flight.record("rule.quarantine", rule=rule.name,
                                   failures=rule.consecutive_failures,
                                   trace_id=occ.trace_id)
            else:
                self.flight.record("rule.quarantine", rule=rule.name,
                                   failures=rule.consecutive_failures)
        return rule.quarantined

    def _dead_letter(self, work: DetachedWork, exc: BaseException) -> None:
        entry = DeadLetter(work=work,
                           error=f"{type(exc).__name__}: {exc}",
                           attempts=work.attempts)
        with self._pending_lock:
            self._dead_letters.append(entry)
            excess = len(self._dead_letters) - \
                self.config.dead_letter_capacity
            if excess > 0:
                del self._dead_letters[:excess]
                self.dead_letters_dropped += excess
        self.stats.inc("dead_lettered")
        self._m_dead_letters.inc()
        if work.occ.trace_id is not None:
            self.flight.record("rule.dead_letter", rule=entry.rule_name,
                               error=entry.error, attempts=entry.attempts,
                               trace_id=work.occ.trace_id)
        else:
            self.flight.record("rule.dead_letter", rule=entry.rule_name,
                               error=entry.error, attempts=entry.attempts)

    def dead_letter_list(self) -> list[DeadLetter]:
        with self._pending_lock:
            return list(self._dead_letters)

    def dead_letter_count(self) -> int:
        with self._pending_lock:
            return len(self._dead_letters)

    def requeue_dead_letters(self, index: Optional[int] = None) -> int:
        """Re-execute dead letters (all of them, or the one at ``index``).

        Attempts reset to zero so the work gets a full retry budget; a
        still-quarantined rule will fail back onto the queue immediately,
        so clear ``rule.quarantined`` / re-enable the rule first.
        Returns the number of entries requeued.
        """
        with self._pending_lock:
            if index is None:
                entries = self._dead_letters[:]
                self._dead_letters.clear()
            else:
                entries = [self._dead_letters.pop(index)]
        for entry in entries:
            entry.work.attempts = 0
            if self._pool is not None:
                self._pool.submit(self._run_detached_blocking, entry.work)
            else:
                with self._pending_lock:
                    self._pending.append(entry.work)
        if self._pool is None and entries:
            self.drain_detached()
        return len(entries)

    def _skip(self, work: DetachedWork) -> None:
        if work.rule.transfer_locks:
            self._drop_reservations(work)
        self.stats.inc("detached_skipped")
        self._log(work.rule, work.mode, work.phase, work.occ, "skipped",
                  session_id=work.session_id)

    # ------------------------------------------------------------------
    # Hooks and bookkeeping
    # ------------------------------------------------------------------

    def on_transaction_outcome(self, tx: Transaction) -> None:
        """Called after every top-level commit/abort (synchronous mode:
        newly decided outcomes may release queued detached work)."""
        if self._pool is None:
            self.drain_detached()

    def pending_detached_count(self) -> int:
        with self._pending_lock:
            return len(self._pending)

    #: bound on the in-memory firing log; older records are dropped.
    MAX_FIRING_LOG = 10_000

    def _log(self, rule: Rule, mode: CouplingMode, phase: str,
             occ: EventOccurrence, outcome: str,
             tx_id: Optional[int] = None,
             session_id: Optional[int] = None) -> None:
        if outcome == "executed":
            self._m_fired[mode].inc()
            if self._observe_latency:
                self._observe_detection_latency(rule, mode, occ,
                                                session_id)
        elif outcome == "condition_false":
            self._m_condition_false.inc()
        elif outcome == "error":
            self._m_errors.inc()
        else:
            self._m_skipped.inc()
        if self.flight.enabled:
            if occ.trace_id is not None:
                self.flight.record("rule.fire", rule=rule.name,
                                   mode=mode.value, phase=phase,
                                   seq=occ.seq, outcome=outcome, tx=tx_id,
                                   session=session_id,
                                   trace_id=occ.trace_id)
            else:
                self.flight.record("rule.fire", rule=rule.name,
                                   mode=mode.value, phase=phase,
                                   seq=occ.seq, outcome=outcome, tx=tx_id,
                                   session=session_id)
        with self._log_lock:
            self.firing_log.append(FiringRecord(
                rule_name=rule.name, mode=mode, phase=phase,
                event_seq=occ.seq, outcome=outcome, tx_id=tx_id,
                session_id=session_id))
            if len(self.firing_log) > self.MAX_FIRING_LOG:
                del self.firing_log[:len(self.firing_log)
                                    - self.MAX_FIRING_LOG]

    def _observe_detection_latency(self, rule: Rule, mode: CouplingMode,
                                   occ: EventOccurrence,
                                   session_id: Optional[int]) -> None:
        """Observe signal -> action-completion latency for one firing.

        A composite occurrence carries no stamp of its own; the latency
        is measured from its *completing* component — the composite
        could not have been detected any earlier.  Occurrences with no
        stamp (observability was off at signal time) are skipped.
        Slow samples carry the occurrence's trace id as an exemplar.
        """
        detected_at = occ.detected_at
        if not detected_at and occ.components:
            detected_at = occ.components[-1].detected_at
        if not detected_at:
            return
        elapsed = perf_counter() - detected_at
        exemplar = occ.trace_id
        self._h_detection.observe(elapsed, exemplar)
        key = (rule.name, mode)
        histogram = self._slo_histograms.get(key)
        if histogram is None:
            histogram = self._slo_histograms[key] = self.metrics.histogram(
                f"slo.detection_latency.{rule.name}.{mode.value}")
        histogram.observe(elapsed, exemplar)
        resolver = self.tenant_resolver
        if resolver is None or session_id is None:
            return
        cache = self._tenant_cache
        if session_id in cache:
            tenant = cache[session_id]
        else:
            tenant = cache[session_id] = resolver(session_id)
        if tenant is None:
            return
        tenant_histogram = self._tenant_slo.get(tenant)
        if tenant_histogram is None:
            tenant_histogram = self._tenant_slo[tenant] = \
                self.metrics.histogram(
                    f"slo.tenant.{tenant}.detection_latency")
        tenant_histogram.observe(elapsed, exemplar)

    def firing_log_for(self, session_id: int) -> list[FiringRecord]:
        """The firing-log slice attributed to one session (a consistent
        snapshot; used by :meth:`repro.core.session.Session.firing_log`)."""
        with self._log_lock:
            return [record for record in self.firing_log
                    if record.session_id == session_id]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
