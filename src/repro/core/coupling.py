"""Coupling modes and the Table 1 support matrix.

REACH distinguishes six coupling modes (paper, Section 3.2):

* **immediate** — the rule executes, possibly as a subtransaction, at the
  point where the event was detected, inside the triggering transaction.
* **deferred** — the rule executes as a subtransaction after the triggering
  transaction completes its work but *before it commits* (at EOT).
* **detached** — the rule executes in an independent top-level transaction.
* **parallel causally dependent** — a separate transaction that may begin
  in parallel but may not commit unless the triggering transaction commits.
* **sequential causally dependent** — a separate transaction that may only
  *start* after the triggering transaction has committed.
* **exclusive causally dependent** — a separate transaction that may commit
  only if the triggering transaction aborts (contingency actions).

Not every combination with the four event categories is meaningful; Table 1
of the paper defines the supported matrix, reproduced in
:data:`SUPPORT_MATRIX` (including the paper's parenthesised "(N)": composite
single-transaction events in immediate mode are semantically correct but
prohibitively expensive — every method event would stall awaiting negative
acknowledgements from all composers — so REACH disallows them).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.events import EventCategory
from repro.errors import UnsupportedCouplingError


class CouplingMode(enum.Enum):
    IMMEDIATE = "immediate"
    DEFERRED = "deferred"
    DETACHED = "detached"
    PARALLEL_CAUSALLY_DEPENDENT = "parallel causally dependent"
    SEQUENTIAL_CAUSALLY_DEPENDENT = "sequential causally dependent"
    EXCLUSIVE_CAUSALLY_DEPENDENT = "exclusive causally dependent"

    @property
    def is_detached(self) -> bool:
        return self not in (CouplingMode.IMMEDIATE, CouplingMode.DEFERRED)

    @property
    def is_causally_dependent(self) -> bool:
        return self in (CouplingMode.PARALLEL_CAUSALLY_DEPENDENT,
                        CouplingMode.SEQUENTIAL_CAUSALLY_DEPENDENT,
                        CouplingMode.EXCLUSIVE_CAUSALLY_DEPENDENT)

    @property
    def requires_trigger_commit(self) -> bool:
        """Modes whose rule may only commit/run if the trigger(s) commit."""
        return self in (CouplingMode.PARALLEL_CAUSALLY_DEPENDENT,
                        CouplingMode.SEQUENTIAL_CAUSALLY_DEPENDENT)

    @property
    def requires_trigger_abort(self) -> bool:
        return self is CouplingMode.EXCLUSIVE_CAUSALLY_DEPENDENT


#: Table 1 of the paper: (coupling mode, event category) -> supported?
#: The note strings record the paper's cell annotations.
SUPPORT_MATRIX: dict[tuple[CouplingMode, EventCategory], bool] = {}
_NOTES: dict[tuple[CouplingMode, EventCategory], str] = {}


def _row(mode: CouplingMode, single_method: bool, temporal: bool,
         one_tx: bool, n_tx: bool, note_1tx: str = "",
         note_ntx: str = "") -> None:
    SUPPORT_MATRIX[(mode, EventCategory.SINGLE_METHOD)] = single_method
    SUPPORT_MATRIX[(mode, EventCategory.PURELY_TEMPORAL)] = temporal
    SUPPORT_MATRIX[(mode, EventCategory.COMPOSITE_SINGLE_TX)] = one_tx
    SUPPORT_MATRIX[(mode, EventCategory.COMPOSITE_MULTI_TX)] = n_tx
    if note_1tx:
        _NOTES[(mode, EventCategory.COMPOSITE_SINGLE_TX)] = note_1tx
    if note_ntx:
        _NOTES[(mode, EventCategory.COMPOSITE_MULTI_TX)] = note_ntx


_row(CouplingMode.IMMEDIATE, True, False, False, False,
     note_1tx="(N): semantically correct but prohibitively expensive")
_row(CouplingMode.DEFERRED, True, False, True, False)
_row(CouplingMode.DETACHED, True, True, True, True)
_row(CouplingMode.PARALLEL_CAUSALLY_DEPENDENT, True, False, True, True,
     note_ntx="all commit")
_row(CouplingMode.SEQUENTIAL_CAUSALLY_DEPENDENT, True, False, True, True,
     note_ntx="all commit")
_row(CouplingMode.EXCLUSIVE_CAUSALLY_DEPENDENT, True, False, True, True,
     note_ntx="all abort")


def is_supported(mode: CouplingMode, category: EventCategory) -> bool:
    """True if Table 1 allows rules on ``category`` events in ``mode``."""
    return SUPPORT_MATRIX[(mode, category)]


def cell_note(mode: CouplingMode, category: EventCategory) -> str:
    """The paper's annotation for a matrix cell, if any."""
    return _NOTES.get((mode, category), "")


def supported_modes(category: EventCategory) -> list[CouplingMode]:
    return [mode for mode in CouplingMode if is_supported(mode, category)]


def check_supported(mode: CouplingMode, category: EventCategory,
                    rule_name: Optional[str] = None) -> None:
    """Raise :class:`UnsupportedCouplingError` for a disallowed combination.

    The error message explains *why*, following the paper's reasoning.
    """
    if is_supported(mode, category):
        return
    reasons = {
        (CouplingMode.IMMEDIATE, EventCategory.PURELY_TEMPORAL):
            "temporal events occur independently of transactions, so no "
            "transaction exists to execute the rule within",
        (CouplingMode.IMMEDIATE, EventCategory.COMPOSITE_SINGLE_TX):
            "normal execution would stall at every method event awaiting "
            "negative acknowledgements from all composers (Section 6.4)",
        (CouplingMode.IMMEDIATE, EventCategory.COMPOSITE_MULTI_TX):
            "an ambiguity exists as to which originating transaction is "
            "meant (Section 3.2)",
        (CouplingMode.DEFERRED, EventCategory.PURELY_TEMPORAL):
            "temporal events occur independently of transactions, so there "
            "is no triggering transaction to defer to",
        (CouplingMode.DEFERRED, EventCategory.COMPOSITE_MULTI_TX):
            "an ambiguity exists as to which originating transaction's EOT "
            "is meant (Section 3.2)",
    }
    default_reason = ("rules on purely temporal events may only execute "
                      "detached (Table 1)")
    reason = reasons.get((mode, category), default_reason)
    prefix = f"rule {rule_name!r}: " if rule_name else ""
    raise UnsupportedCouplingError(
        f"{prefix}{category.value} events cannot fire rules in "
        f"{mode.value} mode — {reason}")


def format_table1() -> str:
    """Render the support matrix exactly in the layout of the paper's
    Table 1 (used by the T1 reproduction harness)."""
    categories = [
        (EventCategory.SINGLE_METHOD, "Single Method"),
        (EventCategory.PURELY_TEMPORAL, "Purely Temporal"),
        (EventCategory.COMPOSITE_SINGLE_TX, "Composite 1 TX"),
        (EventCategory.COMPOSITE_MULTI_TX, "Composite n TXs"),
    ]
    mode_labels = {
        CouplingMode.IMMEDIATE: "Immediate",
        CouplingMode.DEFERRED: "Deferred",
        CouplingMode.DETACHED: "Detached",
        CouplingMode.PARALLEL_CAUSALLY_DEPENDENT: "Par.caus.dep.",
        CouplingMode.SEQUENTIAL_CAUSALLY_DEPENDENT: "Seq.caus.dep.",
        CouplingMode.EXCLUSIVE_CAUSALLY_DEPENDENT: "Exc.caus.dep.",
    }
    cell_overrides = {
        (CouplingMode.IMMEDIATE, EventCategory.COMPOSITE_SINGLE_TX): "(N)",
        (CouplingMode.PARALLEL_CAUSALLY_DEPENDENT,
         EventCategory.COMPOSITE_MULTI_TX): "Y (all commit)",
        (CouplingMode.SEQUENTIAL_CAUSALLY_DEPENDENT,
         EventCategory.COMPOSITE_MULTI_TX): "Y (all commit)",
        (CouplingMode.EXCLUSIVE_CAUSALLY_DEPENDENT,
         EventCategory.COMPOSITE_MULTI_TX): "Y (all abort)",
    }
    header = (f"{'':16s}" +
              "".join(f"{label:18s}" for __, label in categories))
    lines = [header]
    for mode in CouplingMode:
        cells = []
        for category, __ in categories:
            text = cell_overrides.get(
                (mode, category),
                "Y" if SUPPORT_MATRIX[(mode, category)] else "N")
            cells.append(f"{text:18s}")
        lines.append(f"{mode_labels[mode]:16s}" + "".join(cells))
    return "\n".join(lines)
