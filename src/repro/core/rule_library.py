"""Specialized rule classes derived from :class:`~repro.core.rules.Rule`.

"Specialized rule classes for consistency management, replication
management, and so forth can be derived from this base class" (paper,
Section 6.1).  This module provides the derivations a downstream user
would reach for first:

* :class:`ConstraintRule` — consistency enforcement: a predicate that
  must hold after the triggering operation; violation aborts the
  triggering transaction (deferred + critical by default, so constraints
  are checked once at EOT).
* :class:`ViewMaintenanceRule` — incremental maintenance of a derived
  value on a target object (materialized views, one of the paper's
  DBMS-internal rule domains).
* :class:`ReplicationRule` — replication management: mirrors attribute
  writes on a source object to replica objects, immediately, inside the
  triggering transaction (so replicas cannot drift on abort).
* :class:`AuditRule` — appends a record to an audit log only after the
  triggering transaction durably commits (sequential causally dependent).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.coupling import CouplingMode
from repro.core.events import EventSpec, StateChangeEventSpec
from repro.core.rules import Rule, RuleContext
from repro.errors import RuleDefinitionError


class ConstraintRule(Rule):
    """Consistency constraint: ``predicate(ctx)`` must hold, or the
    triggering transaction aborts.

    Checked deferred (at EOT) by default so a transaction is judged on
    its final state; pass ``coupling=CouplingMode.IMMEDIATE`` to reject
    violations at the offending operation instead.
    """

    def __init__(self, name: str, event: EventSpec,
                 predicate: Callable[[RuleContext], bool],
                 message: str = "",
                 coupling: CouplingMode = CouplingMode.DEFERRED,
                 priority: int = 0):
        if coupling not in (CouplingMode.IMMEDIATE, CouplingMode.DEFERRED):
            raise RuleDefinitionError(
                "a constraint must run inside the triggering transaction "
                "(immediate or deferred) to be able to veto it")
        self.predicate = predicate
        self.message = message or f"constraint {name!r} violated"
        super().__init__(name=name, event=event, coupling=coupling,
                         priority=priority, critical=True,
                         action=self._check,
                         description=f"constraint: {self.message}")

    def _check(self, ctx: RuleContext) -> None:
        if not self.predicate(ctx):
            raise ValueError(self.message)


class ViewMaintenanceRule(Rule):
    """Maintains a derived value incrementally.

    ``maintain(ctx)`` recomputes/adjusts the view; it runs immediately so
    the view is transactionally consistent with the base data (rule
    effects roll back with the trigger).
    """

    def __init__(self, name: str, event: EventSpec,
                 maintain: Callable[[RuleContext], None],
                 priority: int = 0,
                 condition: Optional[Callable[[RuleContext], bool]] = None):
        super().__init__(name=name, event=event, action=maintain,
                         condition=condition,
                         coupling=CouplingMode.IMMEDIATE,
                         priority=priority,
                         description="materialized-view maintenance")


class ReplicationRule(Rule):
    """Mirrors writes on one class's attribute to replica objects.

    ``replicas(ctx)`` returns the objects to update; each receives the
    new value on the same attribute.  Immediate coupling keeps source and
    replicas atomic.
    """

    def __init__(self, name: str, class_name: str, attribute: str,
                 replicas: Callable[[RuleContext], list],
                 priority: int = 0):
        self.replicas = replicas
        self.attribute = attribute
        event = StateChangeEventSpec(class_name, attribute)
        super().__init__(name=name, event=event, action=self._mirror,
                         coupling=CouplingMode.IMMEDIATE,
                         priority=priority,
                         description=f"replicates {class_name}."
                                     f"{attribute}")

    def _mirror(self, ctx: RuleContext) -> None:
        value = ctx["new_value"]
        source = ctx["instance"]
        for replica in self.replicas(ctx):
            if replica is source:
                continue
            setattr(replica, self.attribute, value)


class AuditRule(Rule):
    """Writes an audit record only after the trigger durably commits.

    ``record(ctx)`` builds the entry; ``sink(entry)`` stores it.  Uses
    sequential causally dependent coupling: an aborted transaction leaves
    no audit trace, and the trace is never written before the commit.
    """

    def __init__(self, name: str, event: EventSpec,
                 record: Callable[[RuleContext], Any],
                 sink: Callable[[Any], None],
                 priority: int = 0):
        self.record = record
        self.sink = sink
        super().__init__(
            name=name, event=event, action=self._audit,
            coupling=CouplingMode.SEQUENTIAL_CAUSALLY_DEPENDENT,
            priority=priority, description="audit trail")

    def _audit(self, ctx: RuleContext) -> None:
        self.sink(self.record(ctx))
