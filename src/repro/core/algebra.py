"""The REACH event algebra.

The algebra (paper, Section 3.1) inherits **sequence**, **disjunction**
and **closure** from HiPAC, and **negation**, **conjunction**, **history**
and the notion of a **validity interval** from SAMOS.  Composite events
carry two attributes the paper makes architectural decisions about:

* **scope** — whether the component primitive events must originate in a
  single transaction or may span transactions (Section 3.2, Table 1);
* **validity** — the interval bounding how long a semi-composed event may
  live (Section 3.3).  Composite events across transactions *must* have an
  explicit or inherited validity interval; composites within a single
  transaction live exactly as long as the transaction.

Specs are immutable; the fluent modifiers (:meth:`CompositeEventSpec.within`,
:meth:`~CompositeEventSpec.scoped`, :meth:`~CompositeEventSpec.consumed`)
return modified copies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Hashable, Optional

from repro.errors import EventDefinitionError, IllegalLifespanError
from repro.core.consumption import ConsumptionPolicy
from repro.core.events import (
    EventCategory,
    EventSpec,
    PrimitiveEventSpec,
)


class EventScope(enum.Enum):
    """Where a composite's primitive events may originate."""

    SINGLE_TX = "single transaction"
    MULTI_TX = "multiple transactions"


@dataclass(frozen=True)
class CompositeEventSpec(EventSpec):
    """Base class for the algebra's operators.

    ``scope=None`` means *infer*: multi-transaction when any leaf is
    temporal (temporal events belong to no transaction), otherwise
    single-transaction.
    """

    scope: Optional[EventScope] = field(default=None, kw_only=True)
    validity: Optional[float] = field(default=None, kw_only=True)
    consumption: ConsumptionPolicy = field(
        default=ConsumptionPolicy.CHRONICLE, kw_only=True)

    # -- fluent configuration -------------------------------------------------

    def within(self, seconds: float) -> "CompositeEventSpec":
        """Set the validity interval (seconds)."""
        if seconds <= 0:
            raise EventDefinitionError("validity interval must be positive")
        return replace(self, validity=seconds)

    def scoped(self, scope: EventScope) -> "CompositeEventSpec":
        return replace(self, scope=scope)

    def consumed(self, policy: ConsumptionPolicy) -> "CompositeEventSpec":
        return replace(self, consumption=policy)

    # -- derived properties ------------------------------------------------------

    def resolved_scope(self) -> EventScope:
        if self.scope is not None:
            return self.scope
        if any(leaf.is_temporal for leaf in self.leaves()):
            return EventScope.MULTI_TX
        return EventScope.SINGLE_TX

    def category(self) -> EventCategory:
        if self.resolved_scope() is EventScope.SINGLE_TX:
            return EventCategory.COMPOSITE_SINGLE_TX
        return EventCategory.COMPOSITE_MULTI_TX

    def effective_validity(self) -> Optional[float]:
        """Own validity, else the smallest validity of the components
        (paper, Section 3.3)."""
        if self.validity is not None:
            return self.validity
        child_validities = [
            child.effective_validity() for child in self.children()
        ]
        known = [v for v in child_validities if v is not None]
        return min(known) if known else None

    def children(self) -> tuple[EventSpec, ...]:
        raise NotImplementedError

    def _config_key(self) -> tuple:
        """Scope, validity and consumption distinguish composers: the
        same structural expression under different policies composes
        differently and must not share partial-match state."""
        scope = self.scope.value if self.scope is not None else None
        return (scope, self.validity, self.consumption.value)

    def leaves(self) -> list[PrimitiveEventSpec]:
        out: list[PrimitiveEventSpec] = []
        for child in self.children():
            out.extend(child.leaves())
        return out

    def validate(self, enforce_lifespan: bool = True) -> None:
        """Enforce the lifespan and scope rules of Sections 3.2-3.3.

        Args:
            enforce_lifespan: the root of an expression must satisfy the
                validity rule itself; nested composites are bounded by the
                root's interval operationally, so their own check is waived.

        Raises:
            IllegalLifespanError: multi-transaction composite without an
                explicit or inherited validity interval.
            EventDefinitionError: single-transaction composite containing a
                temporal leaf (temporal events have no transaction).
        """
        scope = self.resolved_scope()
        if enforce_lifespan and scope is EventScope.MULTI_TX and \
                self.effective_validity() is None:
            raise IllegalLifespanError(
                f"composite event {self.describe()} spans transactions but "
                "has no validity interval — illegal per Section 3.3")
        if scope is EventScope.SINGLE_TX and \
                any(leaf.is_temporal for leaf in self.leaves()):
            raise EventDefinitionError(
                "a single-transaction composite cannot contain temporal "
                "events (they originate in no transaction)")
        for child in self.children():
            if isinstance(child, CompositeEventSpec):
                child.validate(enforce_lifespan=False)


def all_of(*specs: EventSpec) -> EventSpec:
    """N-ary conjunction: every spec must occur (any order).

    Builds a left-leaning :class:`Conjunction` tree; configure scope,
    validity and consumption on the returned root.
    """
    if not specs:
        raise EventDefinitionError("all_of requires at least one event")
    result = specs[0]
    for spec in specs[1:]:
        result = Conjunction(result, spec)
    return result


def any_of(*specs: EventSpec) -> EventSpec:
    """N-ary disjunction: any one spec occurring signals."""
    if not specs:
        raise EventDefinitionError("any_of requires at least one event")
    result = specs[0]
    for spec in specs[1:]:
        result = Disjunction(result, spec)
    return result


def sequence_of(*specs: EventSpec) -> EventSpec:
    """N-ary sequence: the specs must occur strictly in the given order."""
    if not specs:
        raise EventDefinitionError("sequence_of requires at least one event")
    result = specs[0]
    for spec in specs[1:]:
        result = Sequence(result, spec)
    return result


@dataclass(frozen=True)
class Sequence(CompositeEventSpec):
    """``first`` followed (strictly later) by ``second`` (HiPAC)."""

    first: EventSpec = None  # type: ignore[assignment]
    second: EventSpec = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.first is None or self.second is None:
            raise EventDefinitionError("Sequence requires two operands")

    def children(self) -> tuple[EventSpec, ...]:
        return (self.first, self.second)

    def key(self) -> Hashable:
        return ("seq", self.first.key(), self.second.key(),
                self._config_key())

    def describe(self) -> str:
        return f"({self.first.describe()} ; {self.second.describe()})"


@dataclass(frozen=True)
class Conjunction(CompositeEventSpec):
    """Both operands, in any order (SAMOS)."""

    left: EventSpec = None  # type: ignore[assignment]
    right: EventSpec = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.left is None or self.right is None:
            raise EventDefinitionError("Conjunction requires two operands")

    def children(self) -> tuple[EventSpec, ...]:
        return (self.left, self.right)

    def key(self) -> Hashable:
        return ("conj", self.left.key(), self.right.key(),
                self._config_key())

    def describe(self) -> str:
        return f"({self.left.describe()} , {self.right.describe()})"


@dataclass(frozen=True)
class Disjunction(CompositeEventSpec):
    """Either operand (HiPAC)."""

    left: EventSpec = None  # type: ignore[assignment]
    right: EventSpec = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.left is None or self.right is None:
            raise EventDefinitionError("Disjunction requires two operands")

    def children(self) -> tuple[EventSpec, ...]:
        return (self.left, self.right)

    def key(self) -> Hashable:
        return ("disj", self.left.key(), self.right.key(),
                self._config_key())

    def describe(self) -> str:
        return f"({self.left.describe()} | {self.right.describe()})"


@dataclass(frozen=True)
class Negation(CompositeEventSpec):
    """Non-occurrence of ``subject`` between ``start`` and ``end`` (SAMOS).

    Raised at an occurrence of ``end`` if no ``subject`` occurred since the
    most recent ``start``.
    """

    subject: EventSpec = None  # type: ignore[assignment]
    start: EventSpec = None  # type: ignore[assignment]
    end: EventSpec = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.subject is None or self.start is None or self.end is None:
            raise EventDefinitionError(
                "Negation requires subject, start and end events")

    def children(self) -> tuple[EventSpec, ...]:
        return (self.subject, self.start, self.end)

    def key(self) -> Hashable:
        return ("neg", self.subject.key(), self.start.key(),
                self.end.key(), self._config_key())

    def describe(self) -> str:
        return (f"(not {self.subject.describe()} in "
                f"[{self.start.describe()}, {self.end.describe()}])")


@dataclass(frozen=True)
class Closure(CompositeEventSpec):
    """``of*``: all occurrences of ``of`` up to ``until``, signalled once
    (HiPAC closure).  Signals only if at least one ``of`` occurred."""

    of: EventSpec = None  # type: ignore[assignment]
    until: EventSpec = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.of is None or self.until is None:
            raise EventDefinitionError("Closure requires of and until events")

    def children(self) -> tuple[EventSpec, ...]:
        return (self.of, self.until)

    def key(self) -> Hashable:
        return ("closure", self.of.key(), self.until.key(),
                self._config_key())

    def describe(self) -> str:
        return f"({self.of.describe()}* until {self.until.describe()})"


@dataclass(frozen=True)
class History(CompositeEventSpec):
    """``count`` occurrences of ``of`` within ``window`` seconds (SAMOS
    TIMES): fires when the ``count``-th occurrence lands inside the sliding
    window."""

    of: EventSpec = None  # type: ignore[assignment]
    count: int = 0
    window: float = 0.0

    def __post_init__(self) -> None:
        if self.of is None:
            raise EventDefinitionError("History requires an operand event")
        if self.count < 1:
            raise EventDefinitionError("History count must be >= 1")
        if self.window <= 0:
            raise EventDefinitionError("History window must be positive")

    def children(self) -> tuple[EventSpec, ...]:
        return (self.of,)

    def key(self) -> Hashable:
        return ("history", self.of.key(), self.count, self.window,
                self._config_key())

    def describe(self) -> str:
        return (f"({self.count} x {self.of.describe()} "
                f"within {self.window}s)")
