"""REACH: the paper's contribution — an integrated active OODBMS layer.

Everything in this package implements Sections 2, 3 and 6 of the paper:
the event set and algebra, event composition relative to transaction
boundaries, lifespans and consumption policies, the six coupling modes with
the Table 1 support matrix, ECA-managers, and the rule execution engine.
"""

from repro.core.events import (
    EventCategory,
    EventOccurrence,
    EventSpec,
    FlowEventKind,
    FlowEventSpec,
    MethodEventSpec,
    Moment,
    PeriodicEventSpec,
    AbsoluteEventSpec,
    RelativeEventSpec,
    MilestoneEventSpec,
    SignalEventSpec,
    StateChangeEventSpec,
)
from repro.core.algebra import (
    Closure,
    Conjunction,
    Disjunction,
    EventScope,
    History,
    Negation,
    Sequence,
)
from repro.core.consumption import ConsumptionPolicy
from repro.core.coupling import (
    CouplingMode,
    SUPPORT_MATRIX,
    is_supported,
    supported_modes,
)
from repro.core.rule_builder import RuleBuilder
from repro.core.rules import Rule, RuleContext
from repro.core.database import ReachDatabase
from repro.core.engine import ReachEngine
from repro.core.session import Session

import warnings as _warnings

__all__ = [
    "EventCategory",
    "EventOccurrence",
    "EventSpec",
    "FlowEventKind",
    "FlowEventSpec",
    "MethodEventSpec",
    "Moment",
    "PeriodicEventSpec",
    "AbsoluteEventSpec",
    "RelativeEventSpec",
    "MilestoneEventSpec",
    "SignalEventSpec",
    "StateChangeEventSpec",
    "Closure",
    "Conjunction",
    "Disjunction",
    "EventScope",
    "History",
    "Negation",
    "Sequence",
    "ConsumptionPolicy",
    "CouplingMode",
    "SUPPORT_MATRIX",
    "is_supported",
    "supported_modes",
    "Rule",
    "RuleBuilder",
    "RuleContext",
    "ReachDatabase",
    "ReachEngine",
    "Session",
]

#: Engine internals reachable here for migration only (deprecated).
_DEPRECATED_INTERNALS = {
    "EventService": "repro.core.eca_manager",
    "PrimitiveECAManager": "repro.core.eca_manager",
    "CompositeECAManager": "repro.core.eca_manager",
    "ReachRulePolicyManager": "repro.core.eca_manager",
    "Composer": "repro.core.composer",
    "RuleScheduler": "repro.core.scheduler",
    "FiringRecord": "repro.core.scheduler",
    "LocalHistory": "repro.core.history",
    "GlobalHistory": "repro.core.history",
    "TemporalEventSource": "repro.core.temporal",
}


def __getattr__(name: str):
    module_path = _DEPRECATED_INTERNALS.get(name)
    if module_path is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    _warnings.warn(
        f"importing {name!r} from {__name__!r} is deprecated; import it "
        f"from {module_path!r} or use the ReachDatabase facade",
        DeprecationWarning, stacklevel=2)
    import importlib
    return getattr(importlib.import_module(module_path), name)
