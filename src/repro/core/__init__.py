"""REACH: the paper's contribution — an integrated active OODBMS layer.

Everything in this package implements Sections 2, 3 and 6 of the paper:
the event set and algebra, event composition relative to transaction
boundaries, lifespans and consumption policies, the six coupling modes with
the Table 1 support matrix, ECA-managers, and the rule execution engine.
"""

from repro.core.events import (
    EventCategory,
    EventOccurrence,
    EventSpec,
    FlowEventKind,
    FlowEventSpec,
    MethodEventSpec,
    Moment,
    PeriodicEventSpec,
    AbsoluteEventSpec,
    RelativeEventSpec,
    MilestoneEventSpec,
    SignalEventSpec,
    StateChangeEventSpec,
)
from repro.core.algebra import (
    Closure,
    Conjunction,
    Disjunction,
    EventScope,
    History,
    Negation,
    Sequence,
)
from repro.core.consumption import ConsumptionPolicy
from repro.core.coupling import (
    CouplingMode,
    SUPPORT_MATRIX,
    is_supported,
    supported_modes,
)
from repro.core.rules import Rule, RuleContext
from repro.core.database import ReachDatabase

__all__ = [
    "EventCategory",
    "EventOccurrence",
    "EventSpec",
    "FlowEventKind",
    "FlowEventSpec",
    "MethodEventSpec",
    "Moment",
    "PeriodicEventSpec",
    "AbsoluteEventSpec",
    "RelativeEventSpec",
    "MilestoneEventSpec",
    "SignalEventSpec",
    "StateChangeEventSpec",
    "Closure",
    "Conjunction",
    "Disjunction",
    "EventScope",
    "History",
    "Negation",
    "Sequence",
    "ConsumptionPolicy",
    "CouplingMode",
    "SUPPORT_MATRIX",
    "is_supported",
    "supported_modes",
    "Rule",
    "RuleContext",
    "ReachDatabase",
]
