"""Event composers: many small composition graphs, not one monolith.

The paper's design (Section 6.3): "large, monolithic event managers that
are based on a single graph should be avoided.  Instead, many small
compositors that can be executed by parallel threads should be supported.
This approach makes the garbage-collection of semi-composed events much
simpler."

Accordingly, each composite event expression owns one :class:`Composer`.
A composer maintains one *composition graph instance* per **group**:

* single-transaction composites group by the originating top-level
  transaction — at that transaction's end the whole graph instance is
  simply removed (Section 3.3's lifespan rule);
* multi-transaction composites use one global graph whose buffered
  occurrences expire after the expression's validity interval, swept by
  :meth:`Composer.gc`.

Within a graph, each algebra operator is a small node holding
policy-governed buffers (:class:`~repro.core.consumption.OccurrenceBuffer`);
sequence nodes additionally enforce the strictly-before constraint via the
global occurrence sequence numbers of the primitive components.
"""

from __future__ import annotations

import threading
from typing import Hashable, Optional

from repro.core.algebra import (
    Closure,
    CompositeEventSpec,
    Conjunction,
    Disjunction,
    EventScope,
    History,
    Negation,
    Sequence,
)
from repro.core.consumption import OccurrenceBuffer
from repro.core.events import (
    EventCategory,
    EventOccurrence,
    EventSpec,
    PrimitiveEventSpec,
)
from repro.errors import EventDefinitionError
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer

_GLOBAL_GROUP: Hashable = "*"


def _min_seq(occ: EventOccurrence) -> int:
    return min(c.seq for c in occ.all_primitive_components())


def _max_seq(occ: EventOccurrence) -> int:
    return max(c.seq for c in occ.all_primitive_components())


def _combine(spec: EventSpec, category: EventCategory,
             components: list[EventOccurrence]) -> EventOccurrence:
    """Build a composite occurrence from its components."""
    parameters: dict = {}
    for component in components:
        parameters.update(component.parameters)
    tx_ids: frozenset[int] = frozenset().union(
        *[c.tx_ids for c in components])
    timestamp = max(c.timestamp for c in components)
    return EventOccurrence(
        spec=spec, category=category, timestamp=timestamp,
        tx_ids=tx_ids, parameters=parameters,
        components=tuple(components))


class _Node:
    """One operator in a composition graph instance."""

    def feed(self, occ: EventOccurrence) -> list[EventOccurrence]:
        raise NotImplementedError

    def pending(self) -> int:
        """Number of buffered semi-composed occurrences in this subtree."""
        raise NotImplementedError

    def discard_older_than(self, cutoff: float) -> int:
        raise NotImplementedError


class _PrimitiveNode(_Node):
    __slots__ = ("key",)

    def __init__(self, spec: PrimitiveEventSpec):
        self.key = spec.key()

    def feed(self, occ: EventOccurrence) -> list[EventOccurrence]:
        return [occ] if occ.spec_key == self.key else []

    def pending(self) -> int:
        return 0

    def discard_older_than(self, cutoff: float) -> int:
        return 0


class _SequenceNode(_Node):
    def __init__(self, spec: Sequence, left: _Node, right: _Node):
        self.spec = spec
        self.category = spec.category()
        self.left = left
        self.right = right
        self.buffer = OccurrenceBuffer(spec.consumption)

    def feed(self, occ: EventOccurrence) -> list[EventOccurrence]:
        emissions: list[EventOccurrence] = []
        for left_emission in self.left.feed(occ):
            self.buffer.insert(left_emission)
        for right_emission in self.right.feed(occ):
            start = _min_seq(right_emission)
            groups = self.buffer.select(
                eligible=lambda item, __start=start:
                    _max_seq(item) < __start)
            for group in groups:
                emissions.append(_combine(
                    self.spec, self.category, group + [right_emission]))
        return emissions

    def pending(self) -> int:
        return len(self.buffer) + self.left.pending() + self.right.pending()

    def discard_older_than(self, cutoff: float) -> int:
        return (self.buffer.discard_older_than(cutoff)
                + self.left.discard_older_than(cutoff)
                + self.right.discard_older_than(cutoff))


class _ConjunctionNode(_Node):
    def __init__(self, spec: Conjunction, left: _Node, right: _Node):
        self.spec = spec
        self.category = spec.category()
        self.left = left
        self.right = right
        self.left_buffer = OccurrenceBuffer(spec.consumption)
        self.right_buffer = OccurrenceBuffer(spec.consumption)

    @staticmethod
    def _disjoint_from(emission: EventOccurrence):
        """Eligibility: no primitive occurrence may join a composite twice
        (relevant when both operands match the same event type)."""
        seqs = {c.seq for c in emission.all_primitive_components()}
        return lambda item: seqs.isdisjoint(
            c.seq for c in item.all_primitive_components())

    def feed(self, occ: EventOccurrence) -> list[EventOccurrence]:
        emissions: list[EventOccurrence] = []
        left_emissions = self.left.feed(occ)
        right_emissions = self.right.feed(occ)
        for emission in left_emissions:
            groups = self.right_buffer.select(
                eligible=self._disjoint_from(emission))
            if groups:
                for group in groups:
                    emissions.append(_combine(
                        self.spec, self.category, group + [emission]))
            else:
                self.left_buffer.insert(emission)
        for emission in right_emissions:
            groups = self.left_buffer.select(
                eligible=self._disjoint_from(emission))
            if groups:
                for group in groups:
                    emissions.append(_combine(
                        self.spec, self.category, group + [emission]))
            else:
                self.right_buffer.insert(emission)
        return emissions

    def pending(self) -> int:
        return (len(self.left_buffer) + len(self.right_buffer)
                + self.left.pending() + self.right.pending())

    def discard_older_than(self, cutoff: float) -> int:
        return (self.left_buffer.discard_older_than(cutoff)
                + self.right_buffer.discard_older_than(cutoff)
                + self.left.discard_older_than(cutoff)
                + self.right.discard_older_than(cutoff))


class _DisjunctionNode(_Node):
    def __init__(self, spec: Disjunction, left: _Node, right: _Node):
        self.spec = spec
        self.category = spec.category()
        self.left = left
        self.right = right

    def feed(self, occ: EventOccurrence) -> list[EventOccurrence]:
        emissions: list[EventOccurrence] = []
        for emission in self.left.feed(occ) + self.right.feed(occ):
            emissions.append(_combine(self.spec, self.category, [emission]))
        return emissions

    def pending(self) -> int:
        return self.left.pending() + self.right.pending()

    def discard_older_than(self, cutoff: float) -> int:
        return (self.left.discard_older_than(cutoff)
                + self.right.discard_older_than(cutoff))


class _NegationNode(_Node):
    """Non-occurrence of subject between start and end.

    Per feed call, emissions are processed subject-first, then end, then
    start: a subject coincident with the end still vetoes; an end coincident
    with a start closes the previous window before the new one opens.
    """

    def __init__(self, spec: Negation, subject: _Node, start: _Node,
                 end: _Node):
        self.spec = spec
        self.category = spec.category()
        self.subject = subject
        self.start = start
        self.end = end
        self.window_start: Optional[EventOccurrence] = None
        self.subject_seen = False

    def feed(self, occ: EventOccurrence) -> list[EventOccurrence]:
        emissions: list[EventOccurrence] = []
        if self.window_start is not None and self.subject.feed(occ):
            self.subject_seen = True
        for end_emission in self.end.feed(occ):
            if self.window_start is not None and not self.subject_seen:
                emissions.append(_combine(
                    self.spec, self.category,
                    [self.window_start, end_emission]))
            self.window_start = None
            self.subject_seen = False
        for start_emission in self.start.feed(occ):
            self.window_start = start_emission
            self.subject_seen = False
        return emissions

    def pending(self) -> int:
        inner = (self.subject.pending() + self.start.pending()
                 + self.end.pending())
        return inner + (1 if self.window_start is not None else 0)

    def discard_older_than(self, cutoff: float) -> int:
        removed = (self.subject.discard_older_than(cutoff)
                   + self.start.discard_older_than(cutoff)
                   + self.end.discard_older_than(cutoff))
        if self.window_start is not None and \
                self.window_start.timestamp < cutoff:
            self.window_start = None
            self.subject_seen = False
            removed += 1
        return removed


class _ClosureNode(_Node):
    """Accumulate occurrences of ``of`` and signal once at ``until``."""

    def __init__(self, spec: Closure, of: _Node, until: _Node):
        self.spec = spec
        self.category = spec.category()
        self.of = of
        self.until = until
        self.accumulated: list[EventOccurrence] = []

    def feed(self, occ: EventOccurrence) -> list[EventOccurrence]:
        emissions: list[EventOccurrence] = []
        self.accumulated.extend(self.of.feed(occ))
        for until_emission in self.until.feed(occ):
            if self.accumulated:
                emissions.append(_combine(
                    self.spec, self.category,
                    self.accumulated + [until_emission]))
                self.accumulated = []
        return emissions

    def pending(self) -> int:
        return (len(self.accumulated) + self.of.pending()
                + self.until.pending())

    def discard_older_than(self, cutoff: float) -> int:
        before = len(self.accumulated)
        self.accumulated = [occ for occ in self.accumulated
                            if occ.timestamp >= cutoff]
        return (before - len(self.accumulated)
                + self.of.discard_older_than(cutoff)
                + self.until.discard_older_than(cutoff))


class _HistoryNode(_Node):
    """``count`` occurrences of ``of`` within a sliding ``window``."""

    def __init__(self, spec: History, of: _Node):
        self.spec = spec
        self.category = spec.category()
        self.of = of
        self.recent: list[EventOccurrence] = []

    def feed(self, occ: EventOccurrence) -> list[EventOccurrence]:
        emissions: list[EventOccurrence] = []
        for emission in self.of.feed(occ):
            self.recent.append(emission)
            cutoff = emission.timestamp - self.spec.window
            self.recent = [e for e in self.recent if e.timestamp >= cutoff]
            if len(self.recent) >= self.spec.count:
                used = self.recent[-self.spec.count:]
                emissions.append(_combine(self.spec, self.category, used))
                if not self.spec.consumption.reuses_initiator:
                    # Consume the participating occurrences; under the
                    # recent policy the window keeps sliding instead.
                    self.recent = self.recent[:-self.spec.count]
        return emissions

    def pending(self) -> int:
        return len(self.recent) + self.of.pending()

    def discard_older_than(self, cutoff: float) -> int:
        before = len(self.recent)
        self.recent = [e for e in self.recent if e.timestamp >= cutoff]
        return (before - len(self.recent)
                + self.of.discard_older_than(cutoff))


def _build(spec: EventSpec) -> _Node:
    if isinstance(spec, PrimitiveEventSpec):
        return _PrimitiveNode(spec)
    if isinstance(spec, Sequence):
        return _SequenceNode(spec, _build(spec.first), _build(spec.second))
    if isinstance(spec, Conjunction):
        return _ConjunctionNode(spec, _build(spec.left), _build(spec.right))
    if isinstance(spec, Disjunction):
        return _DisjunctionNode(spec, _build(spec.left), _build(spec.right))
    if isinstance(spec, Negation):
        return _NegationNode(spec, _build(spec.subject), _build(spec.start),
                             _build(spec.end))
    if isinstance(spec, Closure):
        return _ClosureNode(spec, _build(spec.of), _build(spec.until))
    if isinstance(spec, History):
        return _HistoryNode(spec, _build(spec.of))
    raise EventDefinitionError(
        f"unknown event spec type {type(spec).__name__!r}")


class Composer:
    """One small compositor for one composite event expression."""

    def __init__(self, spec: CompositeEventSpec, name: str = "",
                 tracer: Tracer = NULL_TRACER,
                 metrics: MetricsRegistry = NULL_METRICS):
        if not isinstance(spec, CompositeEventSpec):
            raise EventDefinitionError(
                "Composer requires a composite event spec")
        spec.validate()
        self.spec = spec
        self.name = name or spec.describe()
        self.scope = spec.resolved_scope()
        self.validity = spec.effective_validity()
        self.category = spec.category()
        self.interested_keys: frozenset[Hashable] = frozenset(
            leaf.key() for leaf in spec.leaves())
        self._graphs: dict[Hashable, _Node] = {}
        self._lock = threading.RLock()
        self.tracer = tracer
        self.emitted = 0
        self.consumed = 0
        self.gc_removed = 0
        self.ignored_no_transaction = 0
        self._span_name = f"compose:{self.name}"
        self._m_fed = metrics.counter("composer.fed")
        self._m_composed = metrics.counter("events.composed")
        self._m_consumed = metrics.counter("events.consumed")
        self._m_gc_removed = metrics.counter("composer.gc_removed")

    # ------------------------------------------------------------------

    def _group_of(self, occ: EventOccurrence) -> Optional[Hashable]:
        if self.scope is EventScope.MULTI_TX:
            return _GLOBAL_GROUP
        if not occ.tx_ids:
            # An occurrence raised outside any transaction cannot belong
            # to a single-transaction composition (there is no EOT to
            # scope its lifespan to): ignore it.
            self.ignored_no_transaction += 1
            return None
        if len(occ.tx_ids) > 1:
            # A sharded transaction: the event service expanded the
            # detecting member's id to the full member group, so every
            # occurrence of one sharded transaction carries the same
            # frozenset — which therefore serves as the group key.  The
            # coordinator sweeps it via on_group_end when the sharded
            # transaction finishes (per-member EOT cannot: members end
            # one at a time while later members may still raise events).
            return occ.tx_ids
        return next(iter(occ.tx_ids))

    def feed(self, occ: EventOccurrence) -> list[EventOccurrence]:
        """Feed one primitive occurrence; return completed composites.

        Completed composite occurrences inherit the trace context of the
        composition span, so rules fired by the composite chain back to
        the primitive detection that completed it; the span's attributes
        record which primitive occurrences (and traces) contributed.
        """
        if occ.spec_key not in self.interested_keys:
            return []
        self._m_fed.inc()
        with self.tracer.span(self._span_name, "composer",
                              trace_id=occ.trace_id,
                              parent_id=occ.span_id,
                              seq=occ.seq) as span:
            with self._lock:
                group = self._group_of(occ)
                if group is None:
                    return []
                graph = self._graphs.get(group)
                if graph is None:
                    graph = _build(self.spec)
                    self._graphs[group] = graph
                emissions = graph.feed(occ)
                self.emitted += len(emissions)
            if emissions:
                self._m_composed.inc(len(emissions))
                components = [c for e in emissions
                              for c in e.all_primitive_components()]
                self.consumed += len(components)
                self._m_consumed.inc(len(components))
                if span is not None:
                    span.attributes["completed"] = len(emissions)
                    span.attributes["component_seqs"] = sorted(
                        {c.seq for c in components})
                    span.attributes["contributing_traces"] = sorted(
                        {c.trace_id for c in components
                         if c.trace_id is not None})
                    for emission in emissions:
                        emission.trace_id = span.trace_id
                        emission.span_id = span.span_id
            return emissions

    # ------------------------------------------------------------------
    # Lifespan management (Section 3.3)
    # ------------------------------------------------------------------

    def on_transaction_end(self, tx_id: int) -> int:
        """Discard the graph instance of a finished transaction."""
        if self.scope is not EventScope.SINGLE_TX:
            return 0
        with self._lock:
            graph = self._graphs.pop(tx_id, None)
            if graph is None:
                return 0
            removed = graph.pending()
            self.gc_removed += removed
            self._m_gc_removed.inc(removed)
            return removed

    def on_group_end(self, tx_ids: frozenset) -> int:
        """Discard the graph instance of a finished *sharded* transaction
        (grouped by its full member-id set, see :meth:`_group_of`)."""
        if self.scope is not EventScope.SINGLE_TX:
            return 0
        with self._lock:
            graph = self._graphs.pop(tx_ids, None)
            if graph is None:
                return 0
            removed = graph.pending()
            self.gc_removed += removed
            self._m_gc_removed.inc(removed)
            return removed

    def gc(self, now: float) -> int:
        """Expire semi-composed state older than the validity interval."""
        if self.validity is None:
            return 0
        cutoff = now - self.validity
        removed = 0
        with self._lock:
            for graph in self._graphs.values():
                removed += graph.discard_older_than(cutoff)
            self.gc_removed += removed
            self._m_gc_removed.inc(removed)
        return removed

    def pending_count(self) -> int:
        """Total semi-composed occurrences currently alive."""
        with self._lock:
            return sum(graph.pending() for graph in self._graphs.values())

    def graph_instance_count(self) -> int:
        with self._lock:
            return len(self._graphs)

    def __repr__(self) -> str:
        return (f"<Composer {self.name!r} scope={self.scope.value} "
                f"pending={self.pending_count()}>")
