"""Event composers: many small composition graphs, not one monolith.

The paper's design (Section 6.3): "large, monolithic event managers that
are based on a single graph should be avoided.  Instead, many small
compositors that can be executed by parallel threads should be supported.
This approach makes the garbage-collection of semi-composed events much
simpler."

Accordingly, each composite event expression owns one :class:`Composer`.
A composer maintains one *composition graph instance* per **group**:

* single-transaction composites group by the originating top-level
  transaction — at that transaction's end the whole graph instance is
  simply removed (Section 3.3's lifespan rule);
* multi-transaction composites use one global graph whose buffered
  occurrences expire after the expression's validity interval, swept by
  :meth:`Composer.gc`.

Within a graph, each algebra operator is a small node holding
policy-governed buffers (:class:`~repro.core.consumption.OccurrenceBuffer`);
sequence nodes additionally enforce the strictly-before constraint via the
global occurrence sequence numbers of the primitive components.
"""

from __future__ import annotations

import threading
from typing import Hashable, Optional

from repro.core.algebra import (
    Closure,
    CompositeEventSpec,
    Conjunction,
    Disjunction,
    EventScope,
    History,
    Negation,
    Sequence,
)
from repro.core.consumption import OccurrenceBuffer
from repro.core.events import (
    EventCategory,
    EventOccurrence,
    EventSpec,
    PrimitiveEventSpec,
    advance_occurrence_seq,
)
from repro.errors import ComposerStateError, EventDefinitionError
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import _NULL_SPAN, NULL_TRACER, Tracer

_GLOBAL_GROUP: Hashable = "*"

#: Version stamp of the durable composer-checkpoint payload.  Bumped when
#: the snapshot structure changes; recovery rejects unknown versions and
#: falls back to an older consistent checkpoint.
COMPOSER_STATE_VERSION = 1


class _SnapshotCodec:
    """Encode/decode :class:`EventOccurrence` trees for a WAL checkpoint.

    The storage serializer handles only plain values (no frozensets, no
    enums, no arbitrary objects), so occurrences become nested dicts keyed
    by their spec keys — which are already serializer-friendly nested
    tuples — and specs are resolved back through an index built from the
    composer's own expression tree.  Rule-condition parameters that the
    serializer cannot represent (live object references, closures) are
    dropped and counted rather than failing the checkpoint: losing a
    binding is recoverable noise, losing the half-match is not.
    """

    def __init__(self, spec: EventSpec):
        self.spec_index: dict[Hashable, EventSpec] = {}
        self._index(spec)
        self.max_seq = 0
        self.dropped_parameters = 0
        #: every transaction id seen while decoding — pre-crash
        #: transactions the recovering engine must treat as decided.
        self.tx_ids: set[int] = set()

    def _index(self, spec: EventSpec) -> None:
        self.spec_index[spec.key()] = spec
        if isinstance(spec, CompositeEventSpec):
            for child in spec.children():
                self._index(child)
        else:
            for leaf in spec.leaves():
                self.spec_index[leaf.key()] = leaf

    def _safe_parameters(self, parameters: dict) -> dict:
        from repro.storage.serializer import serialize
        kept: dict = {}
        for key, value in parameters.items():
            try:
                serialize(key)
                serialize(value)
            except Exception:
                self.dropped_parameters += 1
                continue
            kept[key] = value
        return kept

    def encode(self, occ: EventOccurrence) -> dict:
        self.max_seq = max(self.max_seq, occ.seq)
        return {
            "k": occ.spec_key,
            "t": occ.timestamp,
            "x": sorted(occ.tx_ids),
            "q": occ.seq,
            "p": self._safe_parameters(occ.parameters),
            "c": [self.encode(c) for c in occ.components],
        }

    def decode(self, data: dict) -> EventOccurrence:
        try:
            spec = self.spec_index.get(data["k"])
            if spec is None:
                raise ComposerStateError(
                    f"checkpoint references unknown spec key {data['k']!r}")
            occ = EventOccurrence(
                spec=spec, category=spec.category(),
                timestamp=data["t"],
                tx_ids=frozenset(data["x"]),
                parameters=dict(data["p"]),
                components=tuple(self.decode(c) for c in data["c"]),
                seq=data["q"])
        except ComposerStateError:
            raise
        except Exception as exc:
            raise ComposerStateError(
                f"malformed occurrence in checkpoint: {exc}") from exc
        self.max_seq = max(self.max_seq, occ.seq)
        self.tx_ids.update(occ.tx_ids)
        return occ


def _encode_group_key(group: Hashable) -> tuple:
    if group == _GLOBAL_GROUP:
        return ("global",)
    if isinstance(group, frozenset):
        return ("group", tuple(sorted(group)))
    return ("tx", group)


def _decode_group_key(data: tuple) -> Hashable:
    tag = data[0]
    if tag == "global":
        return _GLOBAL_GROUP
    if tag == "group":
        return frozenset(data[1])
    if tag == "tx":
        return data[1]
    raise ComposerStateError(f"unknown group-key tag {tag!r}")


def _min_seq(occ: EventOccurrence) -> int:
    return min(c.seq for c in occ.all_primitive_components())


def _max_seq(occ: EventOccurrence) -> int:
    return max(c.seq for c in occ.all_primitive_components())


def _combine(spec: EventSpec, category: EventCategory,
             components: list[EventOccurrence]) -> EventOccurrence:
    """Build a composite occurrence from its components."""
    parameters: dict = {}
    for component in components:
        parameters.update(component.parameters)
    tx_ids: frozenset[int] = frozenset().union(
        *[c.tx_ids for c in components])
    timestamp = max(c.timestamp for c in components)
    return EventOccurrence(
        spec=spec, category=category, timestamp=timestamp,
        tx_ids=tx_ids, parameters=parameters,
        components=tuple(components))


class _Node:
    """One operator in a composition graph instance."""

    def feed(self, occ: EventOccurrence) -> list[EventOccurrence]:
        raise NotImplementedError

    def pending(self) -> int:
        """Number of buffered semi-composed occurrences in this subtree."""
        raise NotImplementedError

    def discard_older_than(self, cutoff: float) -> int:
        raise NotImplementedError

    def snapshot(self, codec: _SnapshotCodec) -> Optional[dict]:
        """Mutable state of this subtree, encoded for a WAL checkpoint."""
        raise NotImplementedError

    def restore(self, state: Optional[dict], codec: _SnapshotCodec) -> None:
        """Rebuild this subtree's mutable state from :meth:`snapshot`."""
        raise NotImplementedError


class _PrimitiveNode(_Node):
    __slots__ = ("key",)

    def __init__(self, spec: PrimitiveEventSpec):
        self.key = spec.key()

    def feed(self, occ: EventOccurrence) -> list[EventOccurrence]:
        return [occ] if occ.spec_key == self.key else []

    def pending(self) -> int:
        return 0

    def discard_older_than(self, cutoff: float) -> int:
        return 0

    def snapshot(self, codec: _SnapshotCodec) -> Optional[dict]:
        return None

    def restore(self, state: Optional[dict], codec: _SnapshotCodec) -> None:
        return None


class _SequenceNode(_Node):
    def __init__(self, spec: Sequence, left: _Node, right: _Node):
        self.spec = spec
        self.category = spec.category()
        self.left = left
        self.right = right
        self.buffer = OccurrenceBuffer(spec.consumption)

    def feed(self, occ: EventOccurrence) -> list[EventOccurrence]:
        emissions: list[EventOccurrence] = []
        for left_emission in self.left.feed(occ):
            self.buffer.insert(left_emission)
        for right_emission in self.right.feed(occ):
            start = _min_seq(right_emission)
            groups = self.buffer.select(
                eligible=lambda item, __start=start:
                    _max_seq(item) < __start)
            for group in groups:
                emissions.append(_combine(
                    self.spec, self.category, group + [right_emission]))
        return emissions

    def pending(self) -> int:
        return len(self.buffer) + self.left.pending() + self.right.pending()

    def discard_older_than(self, cutoff: float) -> int:
        return (self.buffer.discard_older_than(cutoff)
                + self.left.discard_older_than(cutoff)
                + self.right.discard_older_than(cutoff))

    def snapshot(self, codec: _SnapshotCodec) -> Optional[dict]:
        return {"buf": [codec.encode(o) for o in self.buffer.snapshot()],
                "left": self.left.snapshot(codec),
                "right": self.right.snapshot(codec)}

    def restore(self, state: Optional[dict], codec: _SnapshotCodec) -> None:
        self.buffer.restore([codec.decode(o) for o in state["buf"]])
        self.left.restore(state["left"], codec)
        self.right.restore(state["right"], codec)


class _ConjunctionNode(_Node):
    def __init__(self, spec: Conjunction, left: _Node, right: _Node):
        self.spec = spec
        self.category = spec.category()
        self.left = left
        self.right = right
        self.left_buffer = OccurrenceBuffer(spec.consumption)
        self.right_buffer = OccurrenceBuffer(spec.consumption)

    @staticmethod
    def _disjoint_from(emission: EventOccurrence):
        """Eligibility: no primitive occurrence may join a composite twice
        (relevant when both operands match the same event type)."""
        seqs = {c.seq for c in emission.all_primitive_components()}
        return lambda item: seqs.isdisjoint(
            c.seq for c in item.all_primitive_components())

    def feed(self, occ: EventOccurrence) -> list[EventOccurrence]:
        emissions: list[EventOccurrence] = []
        left_emissions = self.left.feed(occ)
        right_emissions = self.right.feed(occ)
        for emission in left_emissions:
            groups = self.right_buffer.select(
                eligible=self._disjoint_from(emission))
            if groups:
                for group in groups:
                    emissions.append(_combine(
                        self.spec, self.category, group + [emission]))
            else:
                self.left_buffer.insert(emission)
        for emission in right_emissions:
            groups = self.left_buffer.select(
                eligible=self._disjoint_from(emission))
            if groups:
                for group in groups:
                    emissions.append(_combine(
                        self.spec, self.category, group + [emission]))
            else:
                self.right_buffer.insert(emission)
        return emissions

    def pending(self) -> int:
        return (len(self.left_buffer) + len(self.right_buffer)
                + self.left.pending() + self.right.pending())

    def discard_older_than(self, cutoff: float) -> int:
        return (self.left_buffer.discard_older_than(cutoff)
                + self.right_buffer.discard_older_than(cutoff)
                + self.left.discard_older_than(cutoff)
                + self.right.discard_older_than(cutoff))

    def snapshot(self, codec: _SnapshotCodec) -> Optional[dict]:
        return {
            "lbuf": [codec.encode(o) for o in self.left_buffer.snapshot()],
            "rbuf": [codec.encode(o) for o in self.right_buffer.snapshot()],
            "left": self.left.snapshot(codec),
            "right": self.right.snapshot(codec)}

    def restore(self, state: Optional[dict], codec: _SnapshotCodec) -> None:
        self.left_buffer.restore([codec.decode(o) for o in state["lbuf"]])
        self.right_buffer.restore([codec.decode(o) for o in state["rbuf"]])
        self.left.restore(state["left"], codec)
        self.right.restore(state["right"], codec)


class _DisjunctionNode(_Node):
    def __init__(self, spec: Disjunction, left: _Node, right: _Node):
        self.spec = spec
        self.category = spec.category()
        self.left = left
        self.right = right

    def feed(self, occ: EventOccurrence) -> list[EventOccurrence]:
        emissions: list[EventOccurrence] = []
        for emission in self.left.feed(occ) + self.right.feed(occ):
            emissions.append(_combine(self.spec, self.category, [emission]))
        return emissions

    def pending(self) -> int:
        return self.left.pending() + self.right.pending()

    def discard_older_than(self, cutoff: float) -> int:
        return (self.left.discard_older_than(cutoff)
                + self.right.discard_older_than(cutoff))

    def snapshot(self, codec: _SnapshotCodec) -> Optional[dict]:
        return {"left": self.left.snapshot(codec),
                "right": self.right.snapshot(codec)}

    def restore(self, state: Optional[dict], codec: _SnapshotCodec) -> None:
        self.left.restore(state["left"], codec)
        self.right.restore(state["right"], codec)


class _NegationNode(_Node):
    """Non-occurrence of subject between start and end.

    Per feed call, emissions are processed subject-first, then end, then
    start: a subject coincident with the end still vetoes; an end coincident
    with a start closes the previous window before the new one opens.
    """

    def __init__(self, spec: Negation, subject: _Node, start: _Node,
                 end: _Node):
        self.spec = spec
        self.category = spec.category()
        self.subject = subject
        self.start = start
        self.end = end
        self.window_start: Optional[EventOccurrence] = None
        self.subject_seen = False

    def feed(self, occ: EventOccurrence) -> list[EventOccurrence]:
        emissions: list[EventOccurrence] = []
        if self.window_start is not None and self.subject.feed(occ):
            self.subject_seen = True
        for end_emission in self.end.feed(occ):
            if self.window_start is not None and not self.subject_seen:
                emissions.append(_combine(
                    self.spec, self.category,
                    [self.window_start, end_emission]))
            self.window_start = None
            self.subject_seen = False
        for start_emission in self.start.feed(occ):
            self.window_start = start_emission
            self.subject_seen = False
        return emissions

    def pending(self) -> int:
        inner = (self.subject.pending() + self.start.pending()
                 + self.end.pending())
        return inner + (1 if self.window_start is not None else 0)

    def discard_older_than(self, cutoff: float) -> int:
        removed = (self.subject.discard_older_than(cutoff)
                   + self.start.discard_older_than(cutoff)
                   + self.end.discard_older_than(cutoff))
        if self.window_start is not None and \
                self.window_start.timestamp < cutoff:
            self.window_start = None
            self.subject_seen = False
            removed += 1
        return removed

    def snapshot(self, codec: _SnapshotCodec) -> Optional[dict]:
        window = (codec.encode(self.window_start)
                  if self.window_start is not None else None)
        return {"window": window, "seen": self.subject_seen,
                "subject": self.subject.snapshot(codec),
                "start": self.start.snapshot(codec),
                "end": self.end.snapshot(codec)}

    def restore(self, state: Optional[dict], codec: _SnapshotCodec) -> None:
        window = state["window"]
        self.window_start = (codec.decode(window)
                             if window is not None else None)
        self.subject_seen = bool(state["seen"])
        self.subject.restore(state["subject"], codec)
        self.start.restore(state["start"], codec)
        self.end.restore(state["end"], codec)


class _ClosureNode(_Node):
    """Accumulate occurrences of ``of`` and signal once at ``until``."""

    def __init__(self, spec: Closure, of: _Node, until: _Node):
        self.spec = spec
        self.category = spec.category()
        self.of = of
        self.until = until
        self.accumulated: list[EventOccurrence] = []

    def feed(self, occ: EventOccurrence) -> list[EventOccurrence]:
        emissions: list[EventOccurrence] = []
        self.accumulated.extend(self.of.feed(occ))
        for until_emission in self.until.feed(occ):
            if self.accumulated:
                emissions.append(_combine(
                    self.spec, self.category,
                    self.accumulated + [until_emission]))
                self.accumulated = []
        return emissions

    def pending(self) -> int:
        return (len(self.accumulated) + self.of.pending()
                + self.until.pending())

    def discard_older_than(self, cutoff: float) -> int:
        before = len(self.accumulated)
        self.accumulated = [occ for occ in self.accumulated
                            if occ.timestamp >= cutoff]
        return (before - len(self.accumulated)
                + self.of.discard_older_than(cutoff)
                + self.until.discard_older_than(cutoff))

    def snapshot(self, codec: _SnapshotCodec) -> Optional[dict]:
        return {"acc": [codec.encode(o) for o in self.accumulated],
                "of": self.of.snapshot(codec),
                "until": self.until.snapshot(codec)}

    def restore(self, state: Optional[dict], codec: _SnapshotCodec) -> None:
        self.accumulated = [codec.decode(o) for o in state["acc"]]
        self.of.restore(state["of"], codec)
        self.until.restore(state["until"], codec)


class _HistoryNode(_Node):
    """``count`` occurrences of ``of`` within a sliding ``window``."""

    def __init__(self, spec: History, of: _Node):
        self.spec = spec
        self.category = spec.category()
        self.of = of
        self.recent: list[EventOccurrence] = []

    def feed(self, occ: EventOccurrence) -> list[EventOccurrence]:
        emissions: list[EventOccurrence] = []
        for emission in self.of.feed(occ):
            self.recent.append(emission)
            cutoff = emission.timestamp - self.spec.window
            self.recent = [e for e in self.recent if e.timestamp >= cutoff]
            if len(self.recent) >= self.spec.count:
                used = self.recent[-self.spec.count:]
                emissions.append(_combine(self.spec, self.category, used))
                if not self.spec.consumption.reuses_initiator:
                    # Consume the participating occurrences; under the
                    # recent policy the window keeps sliding instead.
                    self.recent = self.recent[:-self.spec.count]
        return emissions

    def pending(self) -> int:
        return len(self.recent) + self.of.pending()

    def discard_older_than(self, cutoff: float) -> int:
        before = len(self.recent)
        self.recent = [e for e in self.recent if e.timestamp >= cutoff]
        return (before - len(self.recent)
                + self.of.discard_older_than(cutoff))

    def snapshot(self, codec: _SnapshotCodec) -> Optional[dict]:
        return {"recent": [codec.encode(o) for o in self.recent],
                "of": self.of.snapshot(codec)}

    def restore(self, state: Optional[dict], codec: _SnapshotCodec) -> None:
        self.recent = [codec.decode(o) for o in state["recent"]]
        self.of.restore(state["of"], codec)


def _build(spec: EventSpec) -> _Node:
    if isinstance(spec, PrimitiveEventSpec):
        return _PrimitiveNode(spec)
    if isinstance(spec, Sequence):
        return _SequenceNode(spec, _build(spec.first), _build(spec.second))
    if isinstance(spec, Conjunction):
        return _ConjunctionNode(spec, _build(spec.left), _build(spec.right))
    if isinstance(spec, Disjunction):
        return _DisjunctionNode(spec, _build(spec.left), _build(spec.right))
    if isinstance(spec, Negation):
        return _NegationNode(spec, _build(spec.subject), _build(spec.start),
                             _build(spec.end))
    if isinstance(spec, Closure):
        return _ClosureNode(spec, _build(spec.of), _build(spec.until))
    if isinstance(spec, History):
        return _HistoryNode(spec, _build(spec.of))
    raise EventDefinitionError(
        f"unknown event spec type {type(spec).__name__!r}")


class Composer:
    """One small compositor for one composite event expression."""

    def __init__(self, spec: CompositeEventSpec, name: str = "",
                 tracer: Tracer = NULL_TRACER,
                 metrics: MetricsRegistry = NULL_METRICS):
        if not isinstance(spec, CompositeEventSpec):
            raise EventDefinitionError(
                "Composer requires a composite event spec")
        spec.validate()
        self.spec = spec
        self.name = name or spec.describe()
        self.scope = spec.resolved_scope()
        self.validity = spec.effective_validity()
        self.category = spec.category()
        self.interested_keys: frozenset[Hashable] = frozenset(
            leaf.key() for leaf in spec.leaves())
        self._graphs: dict[Hashable, _Node] = {}
        self._lock = threading.RLock()
        self.tracer = tracer
        self.emitted = 0
        self.consumed = 0
        self.gc_removed = 0
        self.ignored_no_transaction = 0
        #: set whenever partial-match state may have changed since the
        #: last snapshot; the checkpoint emitter skips clean composers.
        self.dirty = False
        #: seq watermark of the last restored checkpoint (0 = none):
        #: recovery feeds only the GlobalHistory suffix past this point.
        self.restored_watermark = 0
        #: transaction ids referenced by restored half-matches — ghosts
        #: of the crashed incarnation, which the recovering engine must
        #: mark decided or causally-dependent rule work waits forever.
        self.restored_tx_ids: frozenset[int] = frozenset()
        #: count of parameters dropped from checkpoints because the
        #: storage serializer cannot represent them.
        self.checkpoint_dropped_parameters = 0
        self._span_name = f"compose:{self.name}"
        self._m_fed = metrics.counter("composer.fed")
        self._m_composed = metrics.counter("events.composed")
        self._m_consumed = metrics.counter("events.consumed")
        self._m_gc_removed = metrics.counter("composer.gc_removed")

    # ------------------------------------------------------------------

    def _group_of(self, occ: EventOccurrence) -> Optional[Hashable]:
        if self.scope is EventScope.MULTI_TX:
            return _GLOBAL_GROUP
        if not occ.tx_ids:
            # An occurrence raised outside any transaction cannot belong
            # to a single-transaction composition (there is no EOT to
            # scope its lifespan to): ignore it.
            self.ignored_no_transaction += 1
            return None
        if len(occ.tx_ids) > 1:
            # A sharded transaction: the event service expanded the
            # detecting member's id to the full member group, so every
            # occurrence of one sharded transaction carries the same
            # frozenset — which therefore serves as the group key.  The
            # coordinator sweeps it via on_group_end when the sharded
            # transaction finishes (per-member EOT cannot: members end
            # one at a time while later members may still raise events).
            return occ.tx_ids
        return next(iter(occ.tx_ids))

    def feed(self, occ: EventOccurrence) -> list[EventOccurrence]:
        """Feed one primitive occurrence; return completed composites.

        Completed composite occurrences inherit the trace context of the
        composition span, so rules fired by the composite chain back to
        the primitive detection that completed it; the span's attributes
        record which primitive occurrences (and traces) contributed.
        """
        if occ.spec_key not in self.interested_keys:
            return []
        self._m_fed.inc()
        tracer = self.tracer
        if occ.trace_id is None and not tracer.active():
            span_cm = _NULL_SPAN  # unsampled: skip attribute packing
        else:
            span_cm = tracer.span(self._span_name, "composer",
                                  trace_id=occ.trace_id,
                                  parent_id=occ.span_id,
                                  seq=occ.seq)
        with span_cm as span:
            with self._lock:
                group = self._group_of(occ)
                if group is None:
                    return []
                graph = self._graphs.get(group)
                if graph is None:
                    graph = _build(self.spec)
                    self._graphs[group] = graph
                emissions = graph.feed(occ)
                self.dirty = True
                self.emitted += len(emissions)
            if emissions:
                self._m_composed.inc(len(emissions))
                components = [c for e in emissions
                              for c in e.all_primitive_components()]
                self.consumed += len(components)
                self._m_consumed.inc(len(components))
                if span is not None:
                    span.attributes["completed"] = len(emissions)
                    span.attributes["component_seqs"] = sorted(
                        {c.seq for c in components})
                    span.attributes["contributing_traces"] = sorted(
                        {c.trace_id for c in components
                         if c.trace_id is not None})
                    for emission in emissions:
                        emission.trace_id = span.trace_id
                        emission.span_id = span.span_id
            return emissions

    # ------------------------------------------------------------------
    # Lifespan management (Section 3.3)
    # ------------------------------------------------------------------

    def on_transaction_end(self, tx_id: int) -> int:
        """Discard the graph instance of a finished transaction."""
        if self.scope is not EventScope.SINGLE_TX:
            return 0
        with self._lock:
            graph = self._graphs.pop(tx_id, None)
            if graph is None:
                return 0
            self.dirty = True
            removed = graph.pending()
            self.gc_removed += removed
            self._m_gc_removed.inc(removed)
            return removed

    def on_group_end(self, tx_ids: frozenset) -> int:
        """Discard the graph instance of a finished *sharded* transaction
        (grouped by its full member-id set, see :meth:`_group_of`)."""
        if self.scope is not EventScope.SINGLE_TX:
            return 0
        with self._lock:
            graph = self._graphs.pop(tx_ids, None)
            if graph is None:
                return 0
            self.dirty = True
            removed = graph.pending()
            self.gc_removed += removed
            self._m_gc_removed.inc(removed)
            return removed

    def gc(self, now: float) -> int:
        """Expire semi-composed state older than the validity interval."""
        if self.validity is None:
            return 0
        cutoff = now - self.validity
        removed = 0
        with self._lock:
            for graph in self._graphs.values():
                removed += graph.discard_older_than(cutoff)
            if removed:
                self.dirty = True
            self.gc_removed += removed
            self._m_gc_removed.inc(removed)
        return removed

    def pending_count(self) -> int:
        """Total semi-composed occurrences currently alive."""
        with self._lock:
            return sum(graph.pending() for graph in self._graphs.values())

    def graph_instance_count(self) -> int:
        with self._lock:
            return len(self._graphs)

    def groups(self) -> list[Hashable]:
        """The live composition-group keys: the global marker, single
        transaction ids, and cross-shard member-id frozensets."""
        with self._lock:
            return list(self._graphs)

    # ------------------------------------------------------------------
    # Durability: snapshot/restore through the WAL (COMPOSER_CHECKPOINT)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """A versioned, serializer-friendly image of all partial-match
        state: every composition-group graph (per-tx, per-sharded-group,
        or global) with its policy buffers, negation windows, closure
        accumulators, and history windows.  Clears the dirty flag."""
        codec = _SnapshotCodec(self.spec)
        with self._lock:
            groups = [(_encode_group_key(group), graph.snapshot(codec))
                      for group, graph in self._graphs.items()]
            self.dirty = False
        self.checkpoint_dropped_parameters += codec.dropped_parameters
        return {
            "v": COMPOSER_STATE_VERSION,
            "key": self.spec.key(),
            "watermark": codec.max_seq,
            "groups": groups,
        }

    def restore_state(self, payload: dict) -> int:
        """Rebuild partial-match state from a :meth:`snapshot_state`
        payload; returns the seq watermark of the restored state.

        Raises :class:`ComposerStateError` on any version, spec-key, or
        structural mismatch so recovery can fall back to the previous
        consistent checkpoint.
        """
        try:
            version = payload["v"]
            key = payload["key"]
            groups = payload["groups"]
        except (TypeError, KeyError) as exc:
            raise ComposerStateError(
                f"malformed composer checkpoint: {exc}") from exc
        if version != COMPOSER_STATE_VERSION:
            raise ComposerStateError(
                f"composer checkpoint version {version!r} not supported")
        if key != self.spec.key():
            raise ComposerStateError(
                f"composer checkpoint for {key!r} fed to {self.name!r}")
        codec = _SnapshotCodec(self.spec)
        restored: dict[Hashable, _Node] = {}
        try:
            for group_key, state in groups:
                graph = _build(self.spec)
                graph.restore(state, codec)
                restored[_decode_group_key(group_key)] = graph
        except ComposerStateError:
            raise
        except Exception as exc:
            raise ComposerStateError(
                f"malformed composer checkpoint: {exc}") from exc
        with self._lock:
            self._graphs = restored
            self.dirty = False
            self.restored_watermark = max(self.restored_watermark,
                                          codec.max_seq)
            self.restored_tx_ids = frozenset(codec.tx_ids)
        advance_occurrence_seq(codec.max_seq)
        return codec.max_seq

    def __repr__(self) -> str:
        return (f"<Composer {self.name!r} scope={self.scope.value} "
                f"pending={self.pending_count()}>")
