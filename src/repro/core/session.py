"""Client sessions: per-client state over a shared :class:`ReachEngine`.

A session is what the paper's client/server outlook (Section 5) calls a
client connection: it owns the state that must *not* be shared between
clients — the current-transaction stack (an explicit
:class:`~repro.oodb.transactions.TransactionContext`), a pin cache of
fetched objects, and its slice of the firing log — while everything heavy
(storage, locks, dictionary, event detection, rule scheduling) lives on
the engine and is shared by all sessions.

A session is not welded to a thread.  Binding is explicit and scoped::

    engine = ReachEngine()
    session = engine.create_session("client-42")
    with session.transaction():
        session.persist(river, "Rhein")
        river.update_water_level(30)    # rules fire in *this* session's
                                        # transaction scope

Any thread may serve the session, but only one at a time — a session is
one client, and a client has one request in flight.  Concurrency comes
from many sessions, not from sharing one.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import ExitStack, contextmanager
from typing import Any, Iterator, Optional, Union

from repro.errors import NestedTransactionError
from repro.oodb.oid import OID
from repro.oodb.transactions import (
    Transaction,
    TransactionContext,
    TransactionState,
)

_session_ids = itertools.count(1)


class Session:
    """One client's scope over a shared engine.

    Args:
        engine: the owning :class:`~repro.core.engine.ReachEngine`.
        name: label used in diagnostics; defaults to ``session-<id>``.
        thread_affine: when True the session has *no* context of its own
            and transactions resolve through the per-thread default
            stacks — the legacy one-client-per-thread behaviour the
            facade's default session keeps.  Pinning is disabled in this
            mode (the thread-level stacks are outside the session's
            visibility, so cache invalidation would be unreliable).
    """

    def __init__(self, engine: Any, name: Optional[str] = None,
                 thread_affine: bool = False):
        self.engine = engine
        self.id = next(_session_ids)
        self.name = name or f"session-{self.id}"
        self.thread_affine = thread_affine
        self.context: Optional[TransactionContext] = None if thread_affine \
            else TransactionContext(name=self.name, session_id=self.id)
        #: fetch target -> object, held only while a transaction is open.
        self._pins: dict[Any, Any] = {}
        self._pinning = not thread_affine
        #: serializes serving threads: a session is one client, so two
        #: threads using it concurrently queue up instead of interleaving
        #: (reentrant — transaction() binds, then fetch() binds again).
        self._serving = threading.RLock()
        self.stats = {"transactions": 0, "commits": 0, "aborts": 0,
                      "fetches": 0, "pin_hits": 0}
        self._closed = False

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------

    @contextmanager
    def use(self) -> Iterator["Session"]:
        """Bind this session to the calling thread for the ``with`` body:
        the engine's sentry scope plus (unless thread-affine) this
        session's transaction context."""
        if self._closed:
            raise RuntimeError(f"{self.name} is closed")
        with ExitStack() as stack:
            if self.context is not None:
                # Thread-affine sessions skip the serving lock: they are
                # explicitly multi-threaded (each thread has its own
                # default transaction stack), so serializing them here
                # would strangle legacy concurrent clients.
                stack.enter_context(self._serving)
                stack.enter_context(
                    self.engine.tx_manager.activate(self.context))
            stack.enter_context(self.engine.sentry_registry.bound())
            yield self

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    @contextmanager
    def transaction(self, nested: Optional[bool] = None,
                    deadline: Optional[float] = None) -> Iterator[Transaction]:
        """``with session.transaction() as tx:`` — commit on success,
        abort on exception, all in this session's scope."""
        with self.use():
            self.stats["transactions"] += 1
            try:
                with self.engine.tx_manager.transaction(
                        nested=nested, deadline=deadline) as tx:
                    yield tx
            except BaseException:
                self.stats["aborts"] += 1
                raise
            else:
                self.stats["commits"] += 1
            finally:
                if self.current_transaction() is None:
                    self._pins.clear()

    def begin(self, nested: Optional[bool] = None,
              deadline: Optional[float] = None) -> Transaction:
        with self.use():
            self.stats["transactions"] += 1
            return self.engine.tx_manager.begin(nested=nested,
                                                deadline=deadline)

    def commit(self, tx: Optional[Transaction] = None) -> None:
        with self.use():
            self.engine.tx_manager.commit(tx)
            self.stats["commits"] += 1
            if self.current_transaction() is None:
                self._pins.clear()

    def abort(self, tx: Optional[Transaction] = None) -> None:
        with self.use():
            self.engine.tx_manager.abort(tx)
            self.stats["aborts"] += 1
            if self.current_transaction() is None:
                self._pins.clear()

    def current_transaction(self) -> Optional[Transaction]:
        if self.context is not None:
            return self.context.current()
        return self.engine.tx_manager.current()

    # ------------------------------------------------------------------
    # Objects and queries
    # ------------------------------------------------------------------

    def persist(self, obj: Any, name: Optional[str] = None) -> OID:
        with self.use():
            return self.engine.persist(obj, name)

    def fetch(self, target: Union[str, OID]) -> Any:
        """Fetch through the engine, consulting this session's pin cache.

        Objects are pinned only while a transaction is open on this
        session (2PL makes them stable until EOT); the cache is dropped
        at transaction end, so nothing stale survives a commit or abort.
        """
        self.stats["fetches"] += 1
        with self.use():
            in_tx = self.current_transaction() is not None
            if self._pinning and in_tx:
                key = self._pin_key(target)
                if key in self._pins:
                    self.stats["pin_hits"] += 1
                    return self._pins[key]
                obj = self.engine.fetch(target)
                self._pins[key] = obj
                return obj
            return self.engine.fetch(target)

    @staticmethod
    def _pin_key(target: Union[str, OID]) -> Any:
        return target

    def delete(self, target: Union[str, OID, Any]) -> None:
        with self.use():
            self.engine.delete(target)
            self._pins.clear()

    def query(self, text: str, **params: Any) -> list[Any]:
        with self.use():
            return self.engine.query(text, **params)

    def signal(self, name: str, **parameters: Any) -> None:
        with self.use():
            self.engine.signal(name, **parameters)

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    def firing_log(self) -> list[Any]:
        """The engine firing-log records attributed to this session."""
        return self.engine.scheduler.firing_log_for(self.id)

    def pinned_count(self) -> int:
        return len(self._pins)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the session: abort any transaction still open in its
        context, drop the pins, and detach from the engine.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.context is not None:
            while self.context.stack:
                tx = self.context.stack[-1]
                try:
                    with self.engine.tx_manager.activate(self.context):
                        self.engine.tx_manager.abort(tx)
                except Exception:
                    # Already finishing elsewhere; drop it from the stack.
                    if tx in self.context.stack:
                        self.context.stack.remove(tx)
        self._pins.clear()
        self.engine._forget_session(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<Session {self.id} {self.name!r} {state}>"


class ShardedTransaction:
    """One logical unit of work spanning member transactions on shards.

    Not an atomic distributed transaction: members commit independently
    in shard order (there is no two-phase commit — see
    ``docs/architecture.md``).  What the handle does guarantee is that
    every member carries the full group's transaction-id set on the
    occurrences it detects, so same-transaction composite-event scope
    treats work on different shards as one transaction.
    """

    def __init__(self, members: dict[int, Transaction]):
        #: shard id -> that shard's member transaction, begun eagerly so
        #: the group's id set is complete before any user work runs.
        self.members = members
        self.ids = frozenset(tx.id for tx in members.values())

    def member(self, shard_id: int) -> Transaction:
        return self.members[shard_id]

    def __repr__(self) -> str:
        ids = ", ".join(f"{sid}:{tx.id}" for sid, tx in
                        sorted(self.members.items()))
        return f"<ShardedTransaction [{ids}]>"


class ShardedSession:
    """One client's scope over a :class:`~repro.core.sharding.ShardedEngine`.

    The same client contract as :class:`Session` — one request in flight,
    explicit scoped binding, pin cache dropped at transaction end — but
    the binding covers the whole topology: ``use()`` activates one
    :class:`~repro.oodb.transactions.TransactionContext` per shard (each
    shard has its own transaction manager, so the bindings coexist on one
    thread) plus the single shared sentry registry, and ``transaction()``
    yields a :class:`ShardedTransaction` whose members were begun on
    every participating shard.
    """

    def __init__(self, engine: Any, name: Optional[str] = None,
                 shards: Optional[list[int]] = None):
        self.engine = engine
        self.id = next(_session_ids)
        self.name = name or f"session-{self.id}"
        all_ids = range(engine.shard_count)
        self.shard_ids = sorted(all_ids if shards is None else shards)
        for sid in self.shard_ids:
            if not 0 <= sid < engine.shard_count:
                raise ValueError(f"no shard {sid} in a "
                                 f"{engine.shard_count}-shard topology")
        self.contexts: dict[int, TransactionContext] = {
            sid: TransactionContext(name=f"{self.name}@shard{sid}",
                                    session_id=self.id)
            for sid in self.shard_ids}
        self._pins: dict[Any, Any] = {}
        self._serving = threading.RLock()
        self.stats = {"transactions": 0, "commits": 0, "aborts": 0,
                      "fetches": 0, "pin_hits": 0}
        self._closed = False

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------

    @contextmanager
    def use(self) -> Iterator["ShardedSession"]:
        """Bind this session to the calling thread: every participating
        shard's transaction context plus the shared sentry scope."""
        if self._closed:
            raise RuntimeError(f"{self.name} is closed")
        with ExitStack() as stack:
            stack.enter_context(self._serving)
            for sid in self.shard_ids:
                shard = self.engine.shards[sid]
                stack.enter_context(
                    shard.tx_manager.activate(self.contexts[sid]))
            stack.enter_context(self.engine.sentry_registry.bound())
            yield self

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    @contextmanager
    def transaction(self, nested: Optional[bool] = None,
                    deadline: Optional[float] = None,
                    shards: Optional[list[int]] = None) \
            -> Iterator[ShardedTransaction]:
        """``with session.transaction() as stx:`` over the shards.

        Member transactions are begun *eagerly* on every participating
        shard (default: all of this session's shards; ``shards=[k]``
        restricts the unit of work to known-local shards and skips the
        rest entirely).  Eager begin is cheap — an untouched member only
        pays in-memory bookkeeping, its storage transaction starts at
        first dirty flush — and it makes the group's id set complete
        before user work runs, which cross-shard composite scope needs.

        On success members commit in ascending shard order; a member
        commit failure aborts the not-yet-committed members and
        re-raises, so a failure can leave earlier shards committed
        (documented non-atomicity).  On exception all active members
        abort in reverse order.
        """
        if nested:
            raise NestedTransactionError(
                "sharded transactions cannot nest; use per-shard "
                "sessions for nested work")
        participating = self.shard_ids if shards is None else sorted(shards)
        for sid in participating:
            if sid not in self.contexts:
                raise ValueError(f"shard {sid} is not part of {self.name}")
        with self.use():
            self.stats["transactions"] += 1
            members: dict[int, Transaction] = {}
            try:
                for sid in participating:
                    members[sid] = self.engine.shards[sid].tx_manager.begin(
                        deadline=deadline)
            except BaseException:
                self._abort_members(members)
                self.stats["aborts"] += 1
                raise
            handle = ShardedTransaction(members)
            self.engine.register_tx_group(handle.ids)
            try:
                yield handle
            except BaseException:
                self._abort_members(members)
                self.stats["aborts"] += 1
                raise
            else:
                committed: list[int] = []
                try:
                    for sid in participating:
                        self.engine.shards[sid].tx_manager.commit(
                            members[sid])
                        committed.append(sid)
                except BaseException:
                    self._abort_members({
                        sid: tx for sid, tx in members.items()
                        if sid not in committed})
                    self.stats["aborts"] += 1
                    raise
                self.stats["commits"] += 1
            finally:
                self.engine.unregister_tx_group(handle.ids)
                if all(ctx.current() is None
                       for ctx in self.contexts.values()):
                    self._pins.clear()

    def _abort_members(self, members: dict[int, Transaction]) -> None:
        for sid in sorted(members, reverse=True):
            tx = members[sid]
            try:
                if tx.state is TransactionState.ACTIVE:
                    self.engine.shards[sid].tx_manager.abort(tx)
            except Exception:
                pass

    def current_transaction(self, shard_id: int = 0) -> Optional[Transaction]:
        context = self.contexts.get(shard_id)
        return context.current() if context is not None else None

    # ------------------------------------------------------------------
    # Objects and queries
    # ------------------------------------------------------------------

    def persist(self, obj: Any, name: Optional[str] = None,
                shard: Optional[int] = None) -> OID:
        with self.use():
            return self.engine.persist(obj, name, shard=shard)

    def fetch(self, target: Union[str, OID]) -> Any:
        self.stats["fetches"] += 1
        with self.use():
            in_tx = any(ctx.current() is not None
                        for ctx in self.contexts.values())
            if in_tx:
                if target in self._pins:
                    self.stats["pin_hits"] += 1
                    return self._pins[target]
                obj = self.engine.fetch(target)
                self._pins[target] = obj
                return obj
            return self.engine.fetch(target)

    def delete(self, target: Union[str, OID, Any]) -> None:
        with self.use():
            self.engine.delete(target)
            self._pins.clear()

    def query(self, text: str, **params: Any) -> list[Any]:
        with self.use():
            return self.engine.query(text, **params)

    def signal(self, name: str, **parameters: Any) -> None:
        with self.use():
            self.engine.signal(name, **parameters)

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    def firing_log(self) -> list[Any]:
        """Firing records attributed to this session, over all shards."""
        records = []
        for sid in self.shard_ids:
            records.extend(
                self.engine.shards[sid].scheduler.firing_log_for(self.id))
        return records

    def pinned_count(self) -> int:
        return len(self._pins)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for sid in self.shard_ids:
            context = self.contexts[sid]
            manager = self.engine.shards[sid].tx_manager
            while context.stack:
                tx = context.stack[-1]
                try:
                    with manager.activate(context):
                        manager.abort(tx)
                except Exception:
                    if tx in context.stack:
                        context.stack.remove(tx)
        self._pins.clear()
        self.engine._forget_session(self)

    def __enter__(self) -> "ShardedSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"<ShardedSession {self.id} {self.name!r} "
                f"shards={self.shard_ids} {state}>")
