"""Event consumption policies (SNOOP contexts).

When multiple instances of a primitive event are buffered at a composer, an
ambiguity arises: which instance participates in the composition?  SNOOP
(Chakravarthy & Mishra, cited in Section 3.4) defines four *contexts*,
which the paper adopts as "the best so far defined":

* **recent** — typical for sensor monitoring: only the most recent
  occurrence of a constituent is used; it stays reusable until a newer
  occurrence replaces it.
* **chronicle** — typical for workflows: occurrences are consumed in
  chronological order, each used exactly once.
* **continuous** — useful in financial monitoring: every occurrence opens
  its own composition window; a terminator completes *all* open windows.
* **cumulative** — all buffered occurrences are folded into the single
  composite raised, and all are consumed.

The paper states a system must support at least recent and chronicle
(those were the two in the first REACH prototype); this reproduction
implements all four.  The policy governs *instance selection* inside
composer buffers — it is orthogonal to event lifespan (Section 3.4).
"""

from __future__ import annotations

import enum
from typing import Any


class ConsumptionPolicy(enum.Enum):
    RECENT = "recent"
    CHRONICLE = "chronicle"
    CONTINUOUS = "continuous"
    CUMULATIVE = "cumulative"

    @property
    def reuses_initiator(self) -> bool:
        """Whether a buffered occurrence survives participating in a
        composition (recent keeps the latest instance alive)."""
        return self is ConsumptionPolicy.RECENT


#: Policies the original REACH prototype shipped with (Section 3.4).
REACH_MINIMUM = (ConsumptionPolicy.RECENT, ConsumptionPolicy.CHRONICLE)


class OccurrenceBuffer:
    """A policy-governed buffer of event occurrences at one composer port.

    The composer inserts every matching occurrence and, when the opposite
    port produces a partner, asks the buffer to *select* the occurrence(s)
    to compose with.  Selection semantics differ per policy:

    * recent    -> [newest]               (kept in the buffer afterwards)
    * chronicle -> [oldest]               (removed)
    * continuous-> every buffered one     (each yields its own composite;
                                           all removed)
    * cumulative-> every buffered one     (folded into one composite;
                                           all removed)
    """

    __slots__ = ("policy", "_items")

    def __init__(self, policy: ConsumptionPolicy):
        self.policy = policy
        self._items: list[Any] = []

    def insert(self, occurrence: Any) -> None:
        if self.policy is ConsumptionPolicy.RECENT:
            # Only the most recent instance is ever eligible.
            self._items.clear()
        self._items.append(occurrence)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def peek_all(self) -> list[Any]:
        return list(self._items)

    def select(self, eligible=None) -> list[list[Any]]:
        """Return the composition groups for one terminator occurrence.

        Each inner list is the set of buffered occurrences joining *one*
        composite.  Empty result means no composition is possible.
        ``eligible`` optionally restricts which buffered occurrences may
        participate (e.g. a sequence requires strictly-earlier partners);
        ineligible occurrences stay buffered.
        """
        if eligible is None:
            candidates = list(self._items)
        else:
            candidates = [item for item in self._items if eligible(item)]
        if not candidates:
            return []
        if self.policy is ConsumptionPolicy.RECENT:
            # Newest stays buffered for future compositions.
            return [[candidates[-1]]]
        if self.policy is ConsumptionPolicy.CHRONICLE:
            oldest = candidates[0]
            self._items.remove(oldest)
            return [[oldest]]
        if self.policy is ConsumptionPolicy.CONTINUOUS:
            for item in candidates:
                self._items.remove(item)
            return [[item] for item in candidates]
        # CUMULATIVE: all occurrences fold into one composite.
        for item in candidates:
            self._items.remove(item)
        return [candidates]

    def discard_older_than(self, cutoff: float) -> int:
        """Drop occurrences with ``timestamp < cutoff`` (lifespan GC)."""
        before = len(self._items)
        self._items = [occ for occ in self._items
                       if occ.timestamp >= cutoff]
        return before - len(self._items)

    def clear(self) -> int:
        removed = len(self._items)
        self._items.clear()
        return removed

    # -- durability (composer checkpoints) ---------------------------------

    def snapshot(self) -> list[Any]:
        """The buffered occurrences, oldest first.  Order is semantic:
        chronicle consumes the head, recent keeps only the tail."""
        return list(self._items)

    def restore(self, items: list[Any]) -> None:
        """Replace the buffer contents with ``items`` (oldest first)."""
        self._items = list(items)
