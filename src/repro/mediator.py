"""Heterogeneous event mediation.

REACH is the "REal-time ACtive and **Heterogeneous mediator** system"
(paper, Section 1): the same rule mechanisms are meant to provide
"unified handling of consistency constraints in homogeneous as well as
heterogeneous systems", and Section 6.3 notes that many small composers
are "a necessary step toward distributed event detection/composition".

This module provides that mediation layer at laptop scale: *event links*
forward primitive event occurrences from source databases into a mediator
database, where they surface as signal events that the mediator's rules
and composers consume like any local event.

Semantics follow from the paper's own transaction model:

* a forwarded occurrence carries **no mediator transaction** — it is an
  external happening, like a temporal event.  Mediator rules on forwarded
  events therefore run detached (immediate rules get a fresh top-level
  transaction), and composites over forwarded events must be
  multi-transaction scoped with a validity interval — exactly the
  Section 3.2/3.3 rules, which the mediator inherits rather than bends;
* sources can be heterogeneous: a :func:`link_events` source is another
  REACH database (sentry-detected events), while
  :func:`link_layered_events` adapts the wrapper-based layered system —
  mediation works with whatever detection the source can offer.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.events import (
    EventOccurrence,
    EventSpec,
    SignalEventSpec,
)
from repro.layered.layered_adbms import LayeredActiveDBMS, LayeredRule


@dataclass
class EventLink:
    """One source -> mediator forwarding channel.

    ``signal_name`` is the event name in the mediator's namespace;
    ``source_name`` tags each forwarded occurrence's parameters so rules
    can tell sources apart.  ``transform`` optionally rewrites the
    forwarded parameter dict (schema mediation).
    """

    source_name: str
    signal_name: str
    mediator: Any
    transform: Optional[Callable[[dict], dict]] = None
    forwarded: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)
    _detach: Optional[Callable[[], None]] = field(default=None, repr=False)

    def deliver(self, parameters: dict) -> None:
        """Raise the forwarded occurrence in the mediator."""
        payload = dict(parameters)
        payload["source"] = self.source_name
        if self.transform is not None:
            payload = self.transform(payload)
        with self._lock:
            self.forwarded += 1
        # External origin: explicitly no mediator transaction.
        self.mediator.events.emit(SignalEventSpec(self.signal_name),
                                  payload, tx_ids=frozenset())

    def close(self) -> None:
        if self._detach is not None:
            self._detach()
            self._detach = None


def link_events(source_db: Any, mediator_db: Any, spec: EventSpec,
                signal_name: str, source_name: str = "",
                transform: Optional[Callable[[dict], dict]] = None,
                forward_committed_only: bool = False) -> EventLink:
    """Forward occurrences of a primitive ``spec`` from one REACH database
    into another.

    With ``forward_committed_only=True`` the link buffers occurrences per
    source transaction and releases them only when that transaction
    commits (aborted work never leaks to the mediator); otherwise events
    stream as detected.
    """
    link = EventLink(source_name=source_name or f"db@{id(source_db):x}",
                     signal_name=signal_name, mediator=mediator_db,
                     transform=transform)
    manager = source_db.events.primitive_manager(spec)

    def _bound(occ: EventOccurrence) -> dict:
        """Resolve the spec's parameter names (binding is normally a
        rule-side concern; the link plays the rule here)."""
        parameters = dict(occ.parameters)
        for name, value in zip(getattr(spec, "param_names", ()),
                               parameters.get("args", ())):
            parameters[name] = value
        return _exportable(parameters)

    if not forward_committed_only:
        def listener(occ: EventOccurrence) -> None:
            link.deliver(_bound(occ))

        manager.add_listener(listener)
        link._detach = lambda: manager.remove_listener(listener)
        return link

    buffered: dict[int, list[dict]] = {}
    buffer_lock = threading.Lock()

    def listener(occ: EventOccurrence) -> None:
        if not occ.tx_ids:
            link.deliver(_bound(occ))
            return
        tx_id = next(iter(occ.tx_ids))
        with buffer_lock:
            buffered.setdefault(tx_id, []).append(_bound(occ))

    def on_commit(tx) -> None:
        with buffer_lock:
            ready = buffered.pop(tx.id, [])
        for parameters in ready:
            link.deliver(parameters)

    def on_abort(tx) -> None:
        with buffer_lock:
            buffered.pop(tx.id, None)

    manager.add_listener(listener)
    source_db.tx_manager.post_commit_hooks.append(on_commit)
    source_db.tx_manager.abort_hooks.append(on_abort)

    def detach() -> None:
        manager.remove_listener(listener)
        hooks = source_db.tx_manager.post_commit_hooks
        if on_commit in hooks:
            hooks.remove(on_commit)
        abort_hooks = source_db.tx_manager.abort_hooks
        if on_abort in abort_hooks:
            abort_hooks.remove(on_abort)

    link._detach = detach
    return link


def link_layered_events(layer: LayeredActiveDBMS, mediator_db: Any,
                        class_name: str, method: str, signal_name: str,
                        source_name: str = "") -> EventLink:
    """Adapt a *layered* source: forwarding rides on a wrapper-level rule.

    The layered system's limits apply to the mediation too: only wrapped
    classes report, only method events exist, and — having no transaction
    signals — events stream immediately, committed or not.  The mediator
    absorbs heterogeneous sources at whatever fidelity they offer.
    """
    link = EventLink(source_name=source_name or "layered",
                     signal_name=signal_name, mediator=mediator_db)

    def forward(bindings: dict) -> None:
        link.deliver({
            "method": bindings.get("method"),
            "args": bindings.get("args"),
            "result": bindings.get("result"),
        })

    rule = LayeredRule(name=f"mediator-link-{signal_name}",
                       class_name=class_name, method=method,
                       action=forward)
    layer.register_rule(rule)
    return link


def _exportable(parameters: dict) -> dict:
    """Strip values that must not cross the database boundary.

    Live object references belong to the source's address space; the
    mediator receives values and descriptive fields only (the Section 3.2
    rule applied across databases: no transient references escape)."""
    out: dict[str, Any] = {}
    for key, value in parameters.items():
        if key == "instance":
            out["instance_repr"] = _describe(value)
        elif isinstance(value, (str, int, float, bool, bytes, tuple,
                                list, dict, type(None))):
            out[key] = value
        else:
            out[key] = _describe(value)
    return out


def _describe(value: Any) -> str:
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return f"{type(value).__name__}({name})"
    return type(value).__name__
